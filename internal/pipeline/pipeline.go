// Package pipeline is the concurrent, cache-backed run engine behind the
// experiment harness and the cmd/ tools. A RunSpec — application (or
// trace), processor count, scale, machine configuration, fault schedule —
// flows through the methodology's composable stages:
//
//	acquire  execute the application (dynamic strategy) or obtain its
//	         application-level trace (static strategy);
//	log      replay the trace through the mesh, recording deliveries;
//	analyze  run the core characterization over the network log.
//
// The engine schedules independent specs across a bounded worker pool,
// deduplicates concurrent requests for the same spec (singleflight), and
// backs its in-memory artifact cache with an optional content-addressed
// on-disk cache, so repeated invocations skip simulation entirely.
//
// On top of the stages sits a resilience layer (see internal/resilience):
// every run is cooperatively cancellable through a context threaded into
// the simulator's cycle loop, bounded by an optional per-spec deadline,
// isolated from worker panics (a crash costs one spec, reported as a
// typed *SpecError, never the sweep), and retried with exponential
// backoff when the failure is classified transient. A write-ahead journal
// records each completed spec's cache key so an interrupted sweep resumes
// without repeating finished work.
//
// Every run owns its simulator, machine, RNG streams, and log; parallel
// execution is therefore bit-for-bit identical to sequential execution (a
// property the experiments test suite enforces).
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"commchar/internal/apps"
	"commchar/internal/ccnuma"
	"commchar/internal/core"
	"commchar/internal/fault"
	"commchar/internal/mesh"
	"commchar/internal/mp"
	"commchar/internal/obs"
	"commchar/internal/report"
	"commchar/internal/resilience"
	"commchar/internal/sim"
	"commchar/internal/sp2"
	"commchar/internal/spasm"
	"commchar/internal/trace"
)

// Source says where an artifact came from.
type Source string

const (
	// SourceRun is a freshly executed simulation.
	SourceRun Source = "run"
	// SourceMemory is the engine's in-memory artifact cache.
	SourceMemory Source = "memory"
	// SourceDisk is the content-addressed on-disk cache.
	SourceDisk Source = "disk"
	// SourceRemote is an artifact executed by a remote worker (see the
	// Options.Remote executor and internal/dist).
	SourceRemote Source = "remote"
	// SourceStore is an artifact fetched from the shared remote cache
	// (the Options.Store CacheStore) — executed earlier by some other
	// process in the fleet.
	SourceStore Source = "store"
)

// An Executor runs one spec somewhere other than this process's stages —
// typically a fleet of worker processes behind a coordinator (see
// internal/dist). The engine still owns everything around the execution:
// cache lookup and store, journal append, singleflight dedup, the retry
// policy, and the worker-pool bound all apply to remote runs exactly as
// they do to local ones. Execute must return an artifact whose contents
// are byte-identical to what the local stages would have produced for the
// same spec (the determinism invariant makes this checkable).
type Executor interface {
	Execute(ctx context.Context, spec RunSpec, key string) (*Artifact, error)
}

// Artifact is the pipeline's product for one spec: the characterization
// plus the machine-level observations the experiments draw on.
type Artifact struct {
	Spec RunSpec
	Key  string
	C    *core.Characterization

	// MemStats are the coherence-protocol counters (dynamic strategy).
	MemStats *ccnuma.Stats
	// Profiles are the per-processor execution profiles (dynamic strategy).
	Profiles []spasm.Profile
	// Failures are per-message delivery failures of fault-injected runs.
	Failures []string
	// FaultCounters are the injector's event counts (fault-injected runs).
	FaultCounters fault.Counters

	Source Source
}

// stageResult is what the acquisition stages hand to analyze.
type stageResult struct {
	raw           *core.RawRun
	memStats      *ccnuma.Stats
	profiles      []spasm.Profile
	faultCounters fault.Counters
}

// Options configures an engine.
type Options struct {
	// Parallel bounds concurrent simulation runs; <= 0 means
	// runtime.GOMAXPROCS(0).
	Parallel int
	// CacheDir enables the content-addressed on-disk cache. Empty
	// disables it.
	CacheDir string
	// Salt is the cache-key code-version salt; empty means DefaultSalt.
	Salt string
	// Metrics, when non-nil, receives this engine's counters (so several
	// engines can share one summary). Nil allocates a fresh set.
	Metrics *Metrics
	// OnError is the sweep failure policy of RunAll; the zero value is
	// OnErrorContinue (one lost spec does not cancel its siblings).
	OnError OnError
	// Retry is the transient-failure retry schedule; the zero value
	// means resilience.DefaultPolicy(). Use Policy{MaxAttempts: 1} to
	// disable retries.
	Retry resilience.Policy
	// SpecTimeout is the per-run deadline applied to every spec that
	// does not set its own; 0 means unlimited.
	SpecTimeout time.Duration
	// Journal, when non-nil, receives each completed spec's cache key
	// (see OpenJournal); resumed keys served from the disk cache count
	// as resumed work in the metrics.
	Journal *Journal
	// Remote, when non-nil, executes cache-miss specs through a remote
	// executor (a distributed worker fleet) instead of the local stages.
	// Caching, journaling, dedup, and the retry policy are unchanged.
	Remote Executor
	// Store, when non-nil, is a shared remote artifact cache consulted
	// after a local disk miss (read-through) and fed after every fresh
	// run (asynchronous write-behind). Strictly best-effort: a degraded
	// store costs counters and flight events, never a failed spec.
	Store CacheStore
	// Obs, when non-nil, observes the engine: every stage is traced as a
	// span, the metrics counters are exported through the observer's
	// registry, per-spec progress is tracked, and completed runs
	// contribute their simulated-time message timelines to the Chrome
	// trace. Nil (the default) observes nothing and costs nothing — a
	// traced run's artifacts are byte-identical to an untraced run's.
	Obs *obs.Observer
}

// Engine runs specs through the stages with caching, deduplication, and a
// bounded worker pool. It is safe for concurrent use.
type Engine struct {
	parallel    int
	salt        string
	disk        *diskCache
	metrics     *Metrics
	sem         chan struct{}
	onError     OnError
	retry       resilience.Policy
	specTimeout time.Duration
	journal     *Journal
	remote      Executor
	store       CacheStore
	storeWG     sync.WaitGroup // in-flight write-behind uploads (drained by Close)

	// obs observes the engine (nil: no observation); clock is the
	// engine's only wall-clock source — obs.System() untraced, a fake in
	// deterministic tests.
	obs   *obs.Observer
	clock obs.Clock
	// Stage-latency histograms and live-simulation gauges, registered on
	// the observer's registry (nil without an observer; all methods on
	// them are nil-safe no-ops).
	histAcquire *obs.Histogram
	histReplay  *obs.Histogram
	histAnalyze *obs.Histogram
	simClock    *obs.Gauge
	simEvents   *obs.Gauge

	mu       sync.Mutex
	mem      map[string]*Artifact
	inflight map[string]*call

	// runStages is the acquisition seam; tests substitute synthetic runs.
	runStages func(ctx context.Context, spec RunSpec, track string) (*stageResult, error)
}

type call struct {
	done chan struct{}
	art  *Artifact
	err  error
}

// newEngine builds the in-memory engine core. It cannot fail: every
// fallible attachment (the disk cache) happens in New.
func newEngine(opts Options) *Engine {
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	salt := opts.Salt
	if salt == "" {
		salt = DefaultSalt
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = &Metrics{}
	}
	retry := opts.Retry
	if retry == (resilience.Policy{}) {
		retry = resilience.DefaultPolicy()
	}
	e := &Engine{
		parallel:    parallel,
		salt:        salt,
		metrics:     metrics,
		sem:         make(chan struct{}, parallel),
		onError:     opts.OnError,
		retry:       retry,
		specTimeout: opts.SpecTimeout,
		journal:     opts.Journal,
		remote:      opts.Remote,
		store:       opts.Store,
		obs:         opts.Obs,
		clock:       opts.Obs.ClockOrSystem(),
		mem:         map[string]*Artifact{},
		inflight:    map[string]*call{},
	}
	if opts.Obs != nil {
		r := opts.Obs.Registry
		metrics.RegisterWith(r)
		e.histAcquire = r.Histogram("commchar_pipeline_acquire_seconds",
			"wall time of the acquire stage per executed run", nil)
		e.histReplay = r.Histogram("commchar_pipeline_replay_seconds",
			"wall time of the log (trace replay) stage per executed run", nil)
		e.histAnalyze = r.Histogram("commchar_pipeline_analyze_seconds",
			"wall time of the analyze stage per executed run", nil)
		e.simClock = r.Gauge("commchar_sim_clock_ns",
			"most recently reported simulated clock (ns) of an in-flight run")
		e.simEvents = r.Gauge("commchar_sim_events_fired",
			"most recently reported cumulative event count of an in-flight run")
		opts.Obs.HandleDebug("/topoz", topozHandler(metrics))
	}
	e.runStages = e.acquire
	return e
}

// simProgressInterval spaces the live simulator progress reports: once per
// 64Ki fired events is visible on any long replay and free on short ones.
const simProgressInterval = 1 << 16

// simProgress is the sim.ProgressFunc behind the live gauges. With
// parallel runs the gauges show whichever run reported last — a liveness
// peek, not an aggregate (the aggregates are the counters).
func (e *Engine) simProgress(now sim.Time, fired int64) {
	e.simClock.Set(float64(now))
	e.simEvents.Set(float64(fired))
}

// trackName names a spec's trace track and progress row: the human label
// plus a cache-key prefix, so distinct configurations of one application
// stay distinct.
func trackName(spec RunSpec, key string) string {
	if len(key) > 8 {
		key = key[:8]
	}
	return spec.Label() + "#" + key
}

// New builds an engine. It fails only if the cache directory cannot be
// created.
func New(opts Options) (*Engine, error) {
	e := newEngine(opts)
	if opts.CacheDir != "" {
		d, err := newDiskCache(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		e.disk = d
	}
	return e, nil
}

// NewDefault builds an engine with default options (GOMAXPROCS workers, no
// disk cache, no journal). It cannot fail: the only fallible option is the
// cache directory, which the defaults do not use.
func NewDefault() *Engine { return newEngine(Options{}) }

// Metrics returns the engine's counters.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Journal returns the engine's sweep journal, or nil.
func (e *Engine) Journal() *Journal { return e.journal }

// Close drains the in-flight store write-behinds and releases the
// engine's journal, flushing its final record. An engine without a store
// or journal needs no Close; calling it is then a no-op.
func (e *Engine) Close() error {
	e.storeWG.Wait()
	if e.journal != nil {
		return e.journal.Close()
	}
	return nil
}

// Run characterizes one spec, serving it from cache when possible and
// joining an identical in-flight run instead of duplicating it.
func (e *Engine) Run(spec RunSpec) (*Artifact, error) {
	//lint:allow ctxflow context-free compatibility wrapper; callers that cannot cancel get a fresh root here, cancellable callers use RunContext
	return e.RunContext(context.Background(), spec)
}

// RunContext is Run under cooperative cancellation: the context is
// threaded through the acquire, log, and analyze stages down into the
// simulator's cycle loop, so a hung or livelocked run is killable, and a
// per-spec deadline (spec.Timeout, or the engine's SpecTimeout) bounds
// the run. A failure — panic, deadline, cancellation, or a simulation
// error that survived the retry policy — is reported as a *SpecError.
func (e *Engine) RunContext(ctx context.Context, spec RunSpec) (*Artifact, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	key, err := spec.Key(e.salt)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		e.metrics.Cancelled.Add(1)
		return nil, err
	}
	track := trackName(spec, key)

	e.mu.Lock()
	if a := e.mem[key]; a != nil {
		e.mu.Unlock()
		e.metrics.MemoryHits.Add(1)
		e.obs.Instant("engine", track, "cache", "memory-hit", nil)
		e.obs.SpecDone(track, string(SourceMemory))
		return a, nil
	}
	if c := e.inflight[key]; c != nil {
		e.mu.Unlock()
		e.metrics.DedupHits.Add(1)
		e.obs.Instant("engine", track, "cache", "dedup-join", nil)
		select {
		case <-c.done:
			return c.art, c.err
		case <-ctx.Done():
			e.metrics.Cancelled.Add(1)
			return nil, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()

	art, runErr := e.execute(ctx, spec, key, track)

	e.mu.Lock()
	delete(e.inflight, key)
	if runErr == nil {
		e.mem[key] = art
	}
	e.mu.Unlock()

	if runErr == nil && e.journal != nil {
		// The journal append is write-ahead with respect to the *next*
		// crash, not this run: the artifact is already on disk, so a
		// failed append only costs a re-check on resume.
		if jerr := e.journal.Append(key); jerr != nil {
			e.metrics.JournalErrors.Add(1)
			e.obs.Emit("journal.append.error", map[string]string{"spec": track, "err": jerr.Error()})
		} else {
			e.obs.Emit("journal.append", map[string]string{"spec": track, "key": key})
		}
	}

	if runErr == nil {
		e.obs.SpecDone(track, string(art.Source))
		e.obs.Emit("spec.done", map[string]string{"spec": track, "source": string(art.Source)})
		if e.obs != nil && art.C != nil {
			// Export the run's simulated-time message timeline into the
			// Chrome trace (built only when tracing — the conversion is
			// not free on huge logs).
			e.obs.AddTraceEvents(report.TimelineEvents(track, art.C.Log)...)
		}
	} else {
		e.obs.SpecFail(track, runErr)
	}

	c.art, c.err = art, runErr
	close(c.done)
	return art, runErr
}

// RunAll characterizes every spec concurrently (bounded by the worker
// pool) and returns the artifacts in spec order. Errors are joined; the
// artifact slot of a failed spec is nil.
func (e *Engine) RunAll(specs ...RunSpec) ([]*Artifact, error) {
	//lint:allow ctxflow context-free compatibility wrapper over RunAllContext
	return e.RunAllContext(context.Background(), specs...)
}

// RunAllContext is RunAll under the engine's failure policy. With
// OnErrorContinue (the default) every spec runs to completion regardless
// of sibling failures; if some specs succeeded and some failed, the
// joined failures are wrapped in a *DegradedError so callers (and exit
// codes) can tell a degraded sweep from a clean one. With OnErrorFail the
// first failure cancels the remaining specs; the siblings' collateral
// cancellations are dropped from the report.
func (e *Engine) RunAllContext(ctx context.Context, specs ...RunSpec) ([]*Artifact, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	arts := make([]*Artifact, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec RunSpec) {
			defer wg.Done()
			art, err := e.RunContext(runCtx, spec)
			if err != nil {
				var se *SpecError
				if errors.As(err, &se) {
					errs[i] = err // already labelled with the spec
				} else {
					errs[i] = fmt.Errorf("%s: %w", spec.Label(), err)
				}
				if e.onError == OnErrorFail {
					cancel()
				}
				return
			}
			arts[i] = art
		}(i, spec)
	}
	wg.Wait()

	externallyCancelled := ctx.Err() != nil
	failed := 0
	var kept []error
	for _, err := range errs {
		if err == nil {
			continue
		}
		failed++
		// Under fail-fast, siblings killed by our own cancel are
		// collateral, not findings; keep them only when the caller's
		// context itself was cancelled.
		if e.onError == OnErrorFail && !externallyCancelled && errors.Is(err, context.Canceled) {
			continue
		}
		kept = append(kept, err)
	}
	if failed == 0 {
		return arts, nil
	}
	joined := errors.Join(kept...)
	if joined == nil {
		joined = errors.Join(errs...)
	}
	if e.onError == OnErrorContinue && failed < len(specs) {
		return arts, &DegradedError{Failed: failed, Total: len(specs), Err: joined}
	}
	return arts, joined
}

// jitterSeed derives the deterministic retry-jitter seed from the spec's
// cache key, so concurrent retriers decorrelate while any one spec's
// backoff schedule reproduces exactly.
func jitterSeed(key string) uint64 {
	if len(key) < 16 {
		return 0
	}
	s, err := strconv.ParseUint(key[:16], 16, 64)
	if err != nil {
		return 0
	}
	return s
}

// execute produces the artifact for a spec the caches cannot serve,
// applying the resilience layer: worker-slot acquisition and the stages
// are cancellable, the run is bounded by the per-spec deadline, panics
// are contained, and transient failures retry with backoff.
func (e *Engine) execute(ctx context.Context, spec RunSpec, key, track string) (*Artifact, error) {
	if e.disk != nil {
		lsp := e.obs.StartSpan("engine", track, "cache", "disk-lookup")
		art, ok := e.disk.load(key, spec)
		lsp.End()
		if ok {
			e.metrics.DiskHits.Add(1)
			e.obs.Instant("engine", track, "cache", "disk-hit", nil)
			e.obs.Emit("cache.hit", map[string]string{"spec": track, "level": "disk"})
			if e.journal != nil && e.journal.Done(key) {
				e.metrics.Resumed.Add(1)
				e.obs.Emit("journal.resumed", map[string]string{"spec": track})
			}
			return art, nil
		}
	}
	if art, ok := e.storeGet(ctx, spec, key, track); ok {
		return art, nil
	}

	e.obs.SpecStage(track, obs.StageQueued)
	qsp := e.obs.StartSpan("engine", track, "queue", "queued")
	select {
	case e.sem <- struct{}{}:
		qsp.End()
	case <-ctx.Done():
		qsp.End()
		e.metrics.Cancelled.Add(1)
		e.metrics.SpecFailures.Add(1)
		return nil, &SpecError{Spec: spec, Key: key, Err: ctx.Err()}
	}
	defer func() { <-e.sem }()

	runCtx := ctx
	timeout := spec.Timeout
	if timeout <= 0 {
		timeout = e.specTimeout
	}
	if timeout > 0 {
		var cancelTimeout context.CancelFunc
		runCtx, cancelTimeout = context.WithTimeout(ctx, timeout)
		defer cancelTimeout()
	}

	rsp := e.obs.StartSpan("engine", track, "run", "run "+spec.Label()).SetArg("key", key)
	var art *Artifact
	attempts, err := e.retry.Do(runCtx, jitterSeed(key), func() error {
		return resilience.Protect(func() error {
			a, rerr := e.runOnce(runCtx, spec, key, track)
			if rerr != nil {
				return rerr
			}
			art = a
			return nil
		})
	})
	rsp.SetArg("attempts", strconv.Itoa(attempts)).End()
	if attempts > 1 {
		e.metrics.Retries.Add(int64(attempts - 1))
		e.obs.Emit("retry", map[string]string{"spec": track, "attempts": strconv.Itoa(attempts)})
		e.obs.Instant("engine", track, "run", "retried", map[string]string{"attempts": strconv.Itoa(attempts)})
	}
	if err != nil {
		var pe *resilience.PanicError
		if errors.As(err, &pe) {
			e.metrics.Panics.Add(1)
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			e.metrics.Cancelled.Add(1)
		}
		e.metrics.SpecFailures.Add(1)
		e.obs.Emit("spec.failed", map[string]string{"spec": track, "err": err.Error()})
		return nil, &SpecError{Spec: spec, Key: key, Attempts: attempts, Err: err}
	}

	if e.disk != nil {
		ssp := e.obs.StartSpan("engine", track, "cache", "disk-store")
		serr := e.disk.store(key, art)
		ssp.End()
		if serr != nil {
			e.metrics.DiskStoreErrors.Add(1)
			e.obs.Emit("cache.store.error", map[string]string{"spec": track, "err": serr.Error()})
		}
	}
	if art.Source == SourceRun {
		// Freshly executed here: share it with the fleet. Remote
		// artifacts are already fed into the store by the coordinator at
		// completion time, so re-uploading them would be a wasted PUT.
		e.storePut(spec, key, track, art)
	}
	return art, nil
}

// runOnce executes the stages and the analysis exactly once — locally
// through the acquisition stages, or through the remote executor when one
// is configured.
func (e *Engine) runOnce(ctx context.Context, spec RunSpec, key, track string) (*Artifact, error) {
	if e.remote != nil {
		return e.runRemote(ctx, spec, key, track)
	}
	res, err := e.runStages(ctx, spec, track)
	if err != nil {
		return nil, err
	}

	strategy := core.StrategyStatic
	if res.raw.Trace == nil {
		strategy = core.StrategyDynamic
	}
	e.obs.SpecStage(track, obs.StageAnalyze)
	asp := e.obs.StartSpan("engine", track, "stage", "analyze")
	start := e.clock.Now()
	c, err := res.raw.Characterize(spec.Label(), strategy)
	analyze := e.clock.Now().Sub(start)
	asp.End()
	e.metrics.AnalyzeNS.Add(int64(analyze))
	e.histAnalyze.Observe(analyze.Seconds())
	if err != nil {
		return nil, err
	}

	e.metrics.Runs.Add(1)
	e.metrics.SimEvents.Add(res.raw.Events)
	e.metrics.SimTimeNS.Add(int64(res.raw.Elapsed))
	e.metrics.topoRun(e.meshConfig(spec).Topology.String(), int64(len(res.raw.Log)), int64(res.raw.Elapsed))
	if c.Coll != nil {
		for _, om := range c.Coll.PerOp {
			e.metrics.collRun(om.Op+"/"+om.Algorithm, int64(om.Count), int64(om.Messages), om.Bytes)
		}
	}
	var faulted, failed int64
	for _, d := range res.raw.Log {
		if d.Faults != 0 {
			faulted++
		}
		if d.Status != mesh.StatusDelivered {
			failed++
		}
	}
	e.metrics.Faulted.Add(faulted)
	e.metrics.Failed.Add(failed)

	failures := make([]string, 0, len(res.raw.Failures))
	for _, err := range res.raw.Failures {
		failures = append(failures, err.Error())
	}
	return &Artifact{
		Spec:          spec,
		Key:           key,
		C:             c,
		MemStats:      res.memStats,
		Profiles:      res.profiles,
		Failures:      failures,
		FaultCounters: res.faultCounters,
		Source:        SourceRun,
	}, nil
}

// runRemote delegates one execution to the remote executor. The returned
// artifact is re-labelled with this engine's spec and key (the worker may
// use a different salt locally) and marked SourceRemote; the caller's
// cache store and journal append then treat it like any local run.
func (e *Engine) runRemote(ctx context.Context, spec RunSpec, key, track string) (*Artifact, error) {
	e.obs.SpecStage(track, obs.StageRemote)
	sp := e.obs.StartSpan("engine", track, "stage", "remote").SetArg("key", key)
	start := e.clock.Now()
	art, err := e.remote.Execute(ctx, spec, key)
	remote := e.clock.Now().Sub(start)
	sp.End()
	e.metrics.RemoteNS.Add(int64(remote))
	if err != nil {
		return nil, err
	}
	a := *art
	a.Spec, a.Key, a.Source = spec, key, SourceRemote
	e.metrics.RemoteRuns.Add(1)
	return &a, nil
}

// meshConfig builds the run's interconnect configuration from the spec
// overrides: the named topology (default 2-D mesh), sized for the spec's
// processors unless Dims (or the legacy Width/Height) pins the shape.
// validate has already vetted the topology, so the fallible sizing step
// cannot fail here.
func (e *Engine) meshConfig(spec RunSpec) mesh.Config {
	cfg, err := core.TopologyFor(spec.Topology, spec.Dims, spec.Procs)
	if err != nil {
		// Unreachable after validate; keep the legacy geometry rather than
		// panicking inside a worker.
		cfg = core.MeshFor(spec.Procs)
	}
	if spec.Width > 0 {
		cfg = mesh.DefaultConfig(spec.Width, spec.Height)
	}
	if spec.CycleTime > 0 {
		cfg.CycleTime = spec.CycleTime
	}
	if spec.VirtualChannels > 0 {
		cfg.VirtualChannels = spec.VirtualChannels
	}
	cfg.Routing = spec.Routing
	return cfg
}

// faultSchedule parses the spec's fault schedule; every run gets its own
// (schedules carry RNG state, so they must never be shared across runs).
func (e *Engine) faultSchedule(spec RunSpec) (*fault.Schedule, error) {
	if spec.Faults == "" {
		return nil, nil
	}
	return fault.Parse(spec.Faults, spec.FaultSeed)
}

// acquire is the real acquisition path: run the application (or replay the
// given trace) and collect the raw network log.
func (e *Engine) acquire(ctx context.Context, spec RunSpec, track string) (*stageResult, error) {
	if spec.Trace != nil {
		return e.acquireReplay(ctx, spec, track)
	}
	wl, err := apps.ByName(spec.Scale, spec.App)
	if err != nil {
		return nil, err
	}
	if wl.Strategy == core.StrategyDynamic {
		return e.acquireDynamic(ctx, spec, track)
	}
	return e.acquireStatic(ctx, spec, track)
}

// acquireDynamic executes a shared-memory application on a machine built
// from the spec (execution-driven strategy). The context reaches the
// machine's simulator, so the kernel is killable mid-execution.
func (e *Engine) acquireDynamic(ctx context.Context, spec RunSpec, track string) (*stageResult, error) {
	cfg := spasm.DefaultConfig(spec.Procs)
	cfg.Mesh = e.meshConfig(spec)
	cfg.Barrier = spec.Barrier
	cfg.Memory.Protocol = spec.Protocol
	if spec.CacheBytes > 0 {
		cfg.Memory.CacheBytes = spec.CacheBytes
	}
	sched, err := e.faultSchedule(spec)
	if err != nil {
		return nil, err
	}
	m := spasm.New(cfg)
	if sched != nil {
		m.Net.SetFaults(sched)
	}
	if e.obs != nil {
		m.Sim.SetProgress(simProgressInterval, e.simProgress)
	}
	e.obs.SpecStage(track, obs.StageAcquire)
	sp := e.obs.StartSpan("engine", track, "stage", "acquire")
	start := e.clock.Now()
	raw, err := core.AcquireSharedMemoryOnContext(ctx, m, func(m *spasm.Machine) error {
		return apps.RunSharedMemoryOn(m, spec.Scale, spec.App)
	})
	acquire := e.clock.Now().Sub(start)
	sp.End()
	e.metrics.AcquireNS.Add(int64(acquire))
	e.histAcquire.Observe(acquire.Seconds())
	if err != nil {
		return nil, err
	}
	res := &stageResult{raw: raw, profiles: m.Profiles()}
	st := m.Mem.Stats()
	res.memStats = &st
	if sched != nil {
		res.faultCounters = sched.Counters()
	}
	return res, nil
}

// acquireStatic executes a message-passing application natively to record
// its trace, then replays the trace through the mesh (trace-driven
// strategy). The native execution is not cancellable (it is direct Go
// code, not a simulation); the replay — where the simulated time goes —
// is.
func (e *Engine) acquireStatic(ctx context.Context, spec RunSpec, track string) (*stageResult, error) {
	e.obs.SpecStage(track, obs.StageAcquire)
	sp := e.obs.StartSpan("engine", track, "stage", "acquire")
	start := e.clock.Now()
	alg, err := mp.ParseAlgorithm(spec.Collectives)
	if err != nil {
		return nil, err // unreachable after validate
	}
	tr, err := core.AcquireMessagePassingWith(spec.Procs, alg, func(w *mp.World) error {
		return apps.RunMessagePassingOn(w, spec.Scale, spec.App, spec.Procs)
	})
	acquire := e.clock.Now().Sub(start)
	sp.End()
	e.metrics.AcquireNS.Add(int64(acquire))
	e.histAcquire.Observe(acquire.Seconds())
	if err != nil {
		return nil, err
	}
	return e.replay(ctx, spec, track, tr, sp2.Default())
}

// acquireReplay is the acquisition path of an externally supplied trace
// (meshsim): the acquire stage is the trace itself; only the log stage
// runs.
func (e *Engine) acquireReplay(ctx context.Context, spec RunSpec, track string) (*stageResult, error) {
	var cost trace.CostModel
	if spec.UseSP2 {
		cost = sp2.Default()
	}
	return e.replay(ctx, spec, track, spec.Trace, cost)
}

// replay is the shared log stage: drive the trace through the mesh.
func (e *Engine) replay(ctx context.Context, spec RunSpec, track string, tr *trace.Trace, cost trace.CostModel) (*stageResult, error) {
	sched, err := e.faultSchedule(spec)
	if err != nil {
		return nil, err
	}
	var inj mesh.Injector
	if sched != nil {
		inj = sched
	}
	var hook sim.ProgressFunc
	var every int64
	if e.obs != nil {
		hook, every = e.simProgress, simProgressInterval
	}
	e.obs.SpecStage(track, obs.StageReplay)
	sp := e.obs.StartSpan("engine", track, "stage", "replay")
	start := e.clock.Now()
	raw, err := core.ReplayTraceObserved(ctx, tr, e.meshConfig(spec), cost, inj, spec.Watchdog, every, hook)
	replay := e.clock.Now().Sub(start)
	sp.End()
	e.metrics.ReplayNS.Add(int64(replay))
	e.histReplay.Observe(replay.Seconds())
	if err != nil {
		return nil, err
	}
	res := &stageResult{raw: raw}
	if sched != nil {
		res.faultCounters = sched.Counters()
	}
	return res, nil
}
