package pipeline

import (
	"flag"
	"runtime"
)

// Flags is the uniform pipeline flag set shared by every cmd/ tool:
// -parallel bounds concurrent runs, -cache-dir enables the on-disk cache.
type Flags struct {
	Parallel int
	CacheDir string
}

// AddFlags registers the pipeline flags on a flag set.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Parallel, "parallel", runtime.GOMAXPROCS(0),
		"max concurrent characterization runs")
	fs.StringVar(&f.CacheDir, "cache-dir", "",
		"content-addressed on-disk cache for characterization runs (empty: disabled)")
	return f
}

// Engine builds the engine the flags describe.
func (f *Flags) Engine() (*Engine, error) {
	return New(Options{Parallel: f.Parallel, CacheDir: f.CacheDir})
}
