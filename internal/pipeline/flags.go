package pipeline

import (
	"flag"
	"runtime"
	"time"

	"commchar/internal/cli"
	"commchar/internal/obs"
)

// Flags is the uniform pipeline flag set shared by every cmd/ tool:
// -parallel bounds concurrent runs, -cache-dir enables the on-disk cache,
// -on-error picks the sweep failure policy, -spec-timeout bounds each run,
// and -journal/-resume drive the write-ahead sweep journal.
type Flags struct {
	Parallel    int
	CacheDir    string
	OnError     string
	SpecTimeout time.Duration
	JournalPath string
	Resume      bool

	// Remote, when set before EngineObserved, routes cache-miss specs
	// through a remote executor (see internal/dist). It has no flag of
	// its own: the tools that support distribution construct the
	// executor from their own flags (-workers) and inject it here.
	Remote Executor
	// Store, when set before EngineObserved, attaches a shared remote
	// artifact cache (read-through after disk misses, asynchronous
	// write-behind after fresh runs). Like Remote it has no flag of its
	// own; the distributed tools construct and inject it.
	Store CacheStore
}

// AddFlags registers the pipeline flags on a flag set.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Parallel, "parallel", runtime.GOMAXPROCS(0),
		"max concurrent characterization runs")
	fs.StringVar(&f.CacheDir, "cache-dir", "",
		"content-addressed on-disk cache for characterization runs (empty: disabled)")
	fs.StringVar(&f.OnError, "on-error", "continue",
		"sweep failure policy: continue (finish remaining runs, report losses) or fail (cancel at first failure)")
	fs.DurationVar(&f.SpecTimeout, "spec-timeout", 0,
		"per-run wall-time deadline (0: unlimited)")
	fs.StringVar(&f.JournalPath, "journal", "",
		"write-ahead sweep journal recording completed runs (empty: disabled)")
	fs.BoolVar(&f.Resume, "resume", false,
		"resume from the journal instead of starting fresh (requires -journal and -cache-dir)")
	return f
}

// Engine builds the engine the flags describe. The caller owns the
// engine's Close (which releases the journal).
func (f *Flags) Engine() (*Engine, error) { return f.EngineObserved(nil) }

// EngineObserved is Engine with an observer attached: stages are traced,
// counters exported, progress tracked. A nil observer (observability
// flags all off) is exactly Engine.
func (f *Flags) EngineObserved(ob *obs.Observer) (*Engine, error) {
	onError, err := ParseOnError(f.OnError)
	if err != nil {
		return nil, cli.Usagef("-on-error: %v", err)
	}
	if f.Resume && f.JournalPath == "" {
		return nil, cli.Usagef("-resume requires -journal")
	}
	if f.Resume && f.CacheDir == "" {
		// The journal proves completion; the disk cache holds the
		// artifacts. Resuming without the cache would silently re-run
		// everything, which is worse than saying so.
		return nil, cli.Usagef("-resume requires -cache-dir (the journal records keys, the cache holds the artifacts)")
	}
	var journal *Journal
	if f.JournalPath != "" {
		journal, err = OpenJournal(f.JournalPath, f.Resume)
		if err != nil {
			return nil, err
		}
	}
	eng, err := New(Options{
		Parallel:    f.Parallel,
		CacheDir:    f.CacheDir,
		OnError:     onError,
		SpecTimeout: f.SpecTimeout,
		Journal:     journal,
		Remote:      f.Remote,
		Store:       f.Store,
		Obs:         ob,
	})
	if err != nil {
		if journal != nil {
			journal.Close()
		}
		return nil, err
	}
	return eng, nil
}
