package pipeline

import (
	"encoding/json"
	"net/http"
	"sort"

	"commchar/internal/core"
)

// topoState is the /topoz debug page: the interconnect fabrics this
// process knows how to build, and the per-topology run accounting of the
// engine's metrics. Mounted on the obs debug server by every engine built
// with an observer.
type topoState struct {
	// Fabrics describes each selectable topology sized for a reference
	// 16-processor machine, so the page doubles as a catalog of shapes.
	Fabrics []topoFabric `json:"fabrics"`
	// Runs, Messages, SimTimeNS account executed simulations by the
	// topology family they ran on.
	Runs      map[string]int64 `json:"runs"`
	Messages  map[string]int64 `json:"messages"`
	SimTimeNS map[string]int64 `json:"sim_time_ns"`
}

type topoFabric struct {
	Selector  string `json:"selector"`
	Name      string `json:"name"` // stable config string of the 16-proc instance
	Endpoints int    `json:"endpoints"`
	Nodes     int    `json:"nodes"` // endpoints plus internal switches
	MinVCs    int    `json:"min_virtual_channels"`
}

// topozHandler renders the per-topology debug page from the live metrics.
func topozHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := topoState{
			Runs:      m.TopoRuns(),
			Messages:  m.TopoMessages(),
			SimTimeNS: m.TopoSimTimeNS(),
		}
		names := core.TopologyNames()
		sort.Strings(names)
		for _, sel := range names {
			cfg, err := core.TopologyFor(sel, nil, 16)
			if err != nil {
				continue
			}
			fab := cfg.Fabric()
			st.Fabrics = append(st.Fabrics, topoFabric{
				Selector:  sel,
				Name:      fab.Name(),
				Endpoints: fab.Endpoints(),
				Nodes:     fab.Nodes(),
				MinVCs:    fab.MinVirtualChannels(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	})
}
