package pipeline

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"commchar/internal/apps"
	"commchar/internal/resilience"
)

// chaosEngine returns an engine whose stage behavior is programmable per
// app name, defaulting to the synthetic acquisition. It is the harness of
// the chaos suite: panics, hangs, and flaky failures are injected at the
// stage seam, exactly where a real simulator failure would surface.
func chaosEngine(t *testing.T, opts Options, behavior map[string]func(ctx context.Context, spec RunSpec) (*stageResult, error)) *Engine {
	t.Helper()
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	e.runStages = func(ctx context.Context, spec RunSpec, track string) (*stageResult, error) {
		if fn := behavior[spec.App]; fn != nil {
			return fn(ctx, spec)
		}
		return &stageResult{raw: syntheticRaw(spec.Procs)}, nil
	}
	return e
}

func chaosSpecs(names ...string) []RunSpec {
	specs := make([]RunSpec, len(names))
	for i, n := range names {
		specs[i] = RunSpec{App: n, Procs: 4, Scale: apps.ScaleSmall}
	}
	return specs
}

// TestChaosWorkerPanicLosesOnlyThatSpec: a panicking worker under the
// continue policy costs exactly its spec; the sweep completes, the loss is
// a typed *SpecError inside a *DegradedError, and the survivors are
// deterministic across repeated sweeps.
func TestChaosWorkerPanicLosesOnlyThatSpec(t *testing.T) {
	sweepOnce := func() ([]*Artifact, error, *Metrics) {
		e := chaosEngine(t, Options{Parallel: 4, Retry: resilience.Policy{MaxAttempts: 1}},
			map[string]func(ctx context.Context, spec RunSpec) (*stageResult, error){
				"Cholesky": func(ctx context.Context, spec RunSpec) (*stageResult, error) {
					panic("chaos: worker crash")
				},
			})
		arts, err := e.RunAll(chaosSpecs("IS", "Cholesky", "Nbody", "Maxflow")...)
		return arts, err, e.Metrics()
	}

	arts, err, m := sweepOnce()
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("expected *DegradedError, got %v", err)
	}
	if de.Failed != 1 || de.Total != 4 {
		t.Fatalf("degraded %d/%d, want 1/4", de.Failed, de.Total)
	}
	var se *SpecError
	if !errors.As(err, &se) || se.Spec.App != "Cholesky" {
		t.Fatalf("lost spec not reported as *SpecError: %v", err)
	}
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not preserved through the error chain: %v", err)
	}
	if m.Panics.Load() != 1 || m.SpecFailures.Load() != 1 {
		t.Fatalf("metrics: panics=%d specFailures=%d", m.Panics.Load(), m.SpecFailures.Load())
	}
	for i, name := range []string{"IS", "", "Nbody", "Maxflow"} {
		if name == "" {
			if arts[i] != nil {
				t.Fatal("failed spec produced an artifact")
			}
			continue
		}
		if arts[i] == nil || arts[i].Spec.App != name {
			t.Fatalf("survivor %s lost its artifact", name)
		}
	}

	// Chaos must not perturb the survivors: a second sweep produces
	// identical characterizations.
	arts2, _, _ := sweepOnce()
	for _, i := range []int{0, 2, 3} {
		if !reflect.DeepEqual(arts[i].C, arts2[i].C) {
			t.Fatalf("survivor %d not deterministic under chaos", i)
		}
	}
}

// TestChaosSlowStageHitsDeadline: a hung stage is cut off by the per-spec
// deadline; the failure unwraps to context.DeadlineExceeded and the other
// specs complete untouched.
func TestChaosSlowStageHitsDeadline(t *testing.T) {
	e := chaosEngine(t, Options{Parallel: 4, Retry: resilience.Policy{MaxAttempts: 1}},
		map[string]func(ctx context.Context, spec RunSpec) (*stageResult, error){
			"Nbody": func(ctx context.Context, spec RunSpec) (*stageResult, error) {
				<-ctx.Done() // a hung simulation: only the deadline frees it
				return nil, ctx.Err()
			},
		})
	specs := chaosSpecs("IS", "Nbody")
	specs[1].Timeout = 50 * time.Millisecond
	arts, err := e.RunAll(specs...)
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("expected *DegradedError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline not visible in the chain: %v", err)
	}
	if arts[0] == nil || arts[1] != nil {
		t.Fatalf("artifact split wrong: %v %v", arts[0], arts[1])
	}
	if e.Metrics().Cancelled.Load() == 0 {
		t.Fatal("deadline expiry not counted as cancelled")
	}
	// The sweep itself was not externally cancelled, so the tool-level
	// classification is "degraded", not "interrupted".
	if errors.Is(err, context.Canceled) {
		t.Fatal("deadline expiry must not read as context.Canceled")
	}
}

// TestChaosTransientFailureIsRetried: a stage that fails once with a
// transient error succeeds on retry and the sweep sees no failure at all.
func TestChaosTransientFailureIsRetried(t *testing.T) {
	var mu sync.Mutex
	failures := 1
	e := chaosEngine(t, Options{Parallel: 2,
		Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Multiplier: 2}},
		map[string]func(ctx context.Context, spec RunSpec) (*stageResult, error){
			"IS": func(ctx context.Context, spec RunSpec) (*stageResult, error) {
				mu.Lock()
				defer mu.Unlock()
				if failures > 0 {
					failures--
					return nil, resilience.MarkTransient(errors.New("chaos: flaky disk"))
				}
				return &stageResult{raw: syntheticRaw(spec.Procs)}, nil
			},
		})
	arts, err := e.RunAll(chaosSpecs("IS", "Nbody")...)
	if err != nil {
		t.Fatalf("transient failure leaked: %v", err)
	}
	if arts[0] == nil || arts[1] == nil {
		t.Fatal("missing artifacts")
	}
	if got := e.Metrics().Retries.Load(); got != 1 {
		t.Fatalf("Retries = %d, want 1", got)
	}
}

// TestChaosFailFastCancelsSiblings: under -on-error=fail the first failure
// cancels the rest of the sweep, and the report names the real failure —
// not the collateral cancellations, and not context.Canceled.
func TestChaosFailFastCancelsSiblings(t *testing.T) {
	started := make(chan struct{})
	e := chaosEngine(t, Options{Parallel: 4, OnError: OnErrorFail, Retry: resilience.Policy{MaxAttempts: 1}},
		map[string]func(ctx context.Context, spec RunSpec) (*stageResult, error){
			"IS": func(ctx context.Context, spec RunSpec) (*stageResult, error) {
				<-started // wait until the slow sibling is running
				return nil, errors.New("chaos: hard failure")
			},
			"Nbody": func(ctx context.Context, spec RunSpec) (*stageResult, error) {
				close(started)
				<-ctx.Done() // runs until fail-fast cancels it
				return nil, ctx.Err()
			},
		})
	_, err := e.RunAll(chaosSpecs("IS", "Nbody")...)
	if err == nil {
		t.Fatal("fail-fast sweep reported success")
	}
	if !strings.Contains(err.Error(), "hard failure") {
		t.Fatalf("real failure missing from report: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("collateral cancellation leaked into the report: %v", err)
	}
	var de *DegradedError
	if errors.As(err, &de) {
		t.Fatal("fail-fast must not report a degraded success")
	}
}

// TestChaosCacheCorruptionMidSweep: corrupting a cache entry between
// sweeps forces exactly that spec to re-run; the sweep still completes
// and heals the entry.
func TestChaosCacheCorruptionMidSweep(t *testing.T) {
	dir := t.TempDir()
	e1 := chaosEngine(t, Options{Parallel: 2, CacheDir: dir}, nil)
	specs := chaosSpecs("IS", "Nbody", "Maxflow")
	arts, err := e1.RunAll(specs...)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos: tear the middle spec's stored log mid-record.
	logPath := filepath.Join(dir, arts[1].Key[:2], arts[1].Key, "log.csv")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := chaosEngine(t, Options{Parallel: 2, CacheDir: dir}, nil)
	arts2, err := e2.RunAll(specs...)
	if err != nil {
		t.Fatalf("sweep over corrupt cache failed: %v", err)
	}
	if got := e2.Metrics().Runs.Load(); got != 1 {
		t.Fatalf("corruption forced %d re-runs, want 1", got)
	}
	if got := e2.Metrics().DiskHits.Load(); got != 2 {
		t.Fatalf("DiskHits = %d, want 2", got)
	}
	for i := range specs {
		if !reflect.DeepEqual(arts[i].C, arts2[i].C) {
			t.Fatalf("spec %d differs after corruption heal", i)
		}
	}
}

// TestChaosInterruptedSweepResumesWithZeroReruns is the journal acceptance
// test at the engine level: a sweep cancelled partway through, resumed
// with the journal and the disk cache, re-executes only the unfinished
// specs and reproduces identical artifacts.
func TestChaosInterruptedSweepResumesWithZeroReruns(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(t.TempDir(), "sweep.journal")
	names := []string{"IS", "Nbody", "Cholesky", "Maxflow", "1D-FFT", "MG"}

	j1, err := OpenJournal(journalPath, false)
	if err != nil {
		t.Fatal(err)
	}
	// Slow specs take ~200ms each (polling ctx like a real simulator's
	// cycle loop), so the single-worker sweep is mid-flight long enough
	// for the interrupt to land, whatever order the pool picks.
	slow := func(ctx context.Context, spec RunSpec) (*stageResult, error) {
		deadline := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(deadline) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			time.Sleep(5 * time.Millisecond)
		}
		return &stageResult{raw: syntheticRaw(spec.Procs)}, nil
	}
	behavior := map[string]func(ctx context.Context, spec RunSpec) (*stageResult, error){}
	for _, n := range names[2:] {
		behavior[n] = slow
	}
	e1 := chaosEngine(t, Options{Parallel: 1, CacheDir: dir, Journal: j1,
		Retry: resilience.Policy{MaxAttempts: 1}}, behavior)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// "SIGINT" once the first two specs are journaled.
		for j1.Len() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, err = e1.RunAllContext(ctx, chaosSpecs(names...)...)
	if err == nil {
		t.Fatal("interrupted sweep reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error is not context.Canceled: %v", err)
	}
	doneAtInterrupt := j1.Len()
	if doneAtInterrupt >= len(names) {
		t.Fatalf("interrupt landed too late: %d specs already journaled", doneAtInterrupt)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: a fresh engine, journal in resume mode, same cache.
	j2, err := OpenJournal(journalPath, true)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != doneAtInterrupt {
		t.Fatalf("journal lost records: %d vs %d", j2.Len(), doneAtInterrupt)
	}
	e2 := chaosEngine(t, Options{Parallel: 1, CacheDir: dir, Journal: j2}, nil)
	arts, err := e2.RunAllContext(context.Background(), chaosSpecs(names...)...)
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	defer e2.Close()

	if got := e2.Metrics().Resumed.Load(); got != int64(doneAtInterrupt) {
		t.Fatalf("Resumed = %d, want %d", got, doneAtInterrupt)
	}
	if got := e2.Metrics().Runs.Load(); got != int64(len(names)-doneAtInterrupt) {
		t.Fatalf("resumed sweep executed %d runs, want %d (zero repeats)",
			got, len(names)-doneAtInterrupt)
	}
	for i, a := range arts {
		if a == nil {
			t.Fatalf("spec %d missing after resume", i)
		}
	}

	// The resumed sweep's artifacts match an uninterrupted reference run.
	ref := chaosEngine(t, Options{Parallel: 1}, nil)
	refArts, err := ref.RunAll(chaosSpecs(names...)...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range arts {
		if !reflect.DeepEqual(arts[i].C, refArts[i].C) {
			t.Fatalf("spec %d differs from the uninterrupted run", i)
		}
	}
}

// TestDiskCacheConcurrentSameKeyStores is the cache-hardening check: two
// goroutines storing the same key must both report success and leave a
// readable entry behind.
func TestDiskCacheConcurrentSameKeyStores(t *testing.T) {
	dir := t.TempDir()
	d, err := newDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := chaosEngine(t, Options{Parallel: 1}, nil)
	spec := RunSpec{App: "IS", Procs: 4, Scale: apps.ScaleSmall}
	art, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 10; round++ {
		key := art.Key
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = d.store(key, art)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d: writer %d failed: %v", round, i, err)
			}
		}
		if _, ok := d.load(key, spec); !ok {
			t.Fatalf("round %d: entry unreadable after concurrent stores", round)
		}
		// Reset for the next round so the rename-collision path keeps
		// being exercised (not just the already-exists path).
		if err := os.RemoveAll(d.path(key)); err != nil {
			t.Fatal(err)
		}
	}
}
