package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"commchar/internal/apps"
	"commchar/internal/dist"
	"commchar/internal/obs"
	"commchar/internal/pipeline"
	"commchar/internal/workload"
)

// sweep runs the full small-scale evaluation through an engine with the
// given worker-pool width and returns the rendered output.
func sweep(t *testing.T, parallel int) string {
	t.Helper()
	return sweepObserved(t, parallel, nil)
}

// sweepObserved is sweep with an optional observer attached to the
// engine, for asserting that tracing never changes results.
func sweepObserved(t *testing.T, parallel int, ob *obs.Observer) string {
	t.Helper()
	eng, err := pipeline.New(pipeline.Options{Parallel: parallel, Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerWith(apps.ScaleSmall, eng)
	var sb strings.Builder
	if err := r.All(&sb, 8); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// sweepDistributed runs the full evaluation with every run executed
// remotely: a lease coordinator in front of two in-process workers —
// each with its own engine — wired over real HTTP. By the determinism
// invariant its output must be byte-identical to the local sweeps.
func sweepDistributed(t *testing.T) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord := dist.NewCoordinator(dist.CoordinatorOptions{Lease: 30 * time.Second})
	coord.Start(ctx)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		weng, err := pipeline.New(pipeline.Options{Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		w, err := dist.NewWorker(dist.WorkerOptions{Name: name, Runner: weng})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Poll(ctx, srv.URL); err != nil {
				t.Errorf("worker poll: %v", err)
			}
		}()
	}
	front, err := pipeline.New(pipeline.Options{Parallel: 4, Remote: coord})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerWith(apps.ScaleSmall, front)
	var sb strings.Builder
	if err := r.All(&sb, 8); err != nil {
		t.Fatal(err)
	}
	coord.Finish()
	wg.Wait() // both workers observe StatusDone and detach cleanly
	return sb.String()
}

// sweepTopologyMatrix characterizes the same application on the default
// 2-D mesh, a 3-D torus, and a fat tree through one engine of the given
// worker-pool width, rendering the per-fabric network metrics in spec
// order.
func sweepTopologyMatrix(t *testing.T, parallel int) string {
	t.Helper()
	eng, err := pipeline.New(pipeline.Options{Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var specs []pipeline.RunSpec
	for _, topo := range []string{"", "torus3d", "fattree"} {
		specs = append(specs, pipeline.RunSpec{App: "IS", Procs: 16, Scale: apps.ScaleSmall, Topology: topo})
	}
	arts, err := eng.RunAll(specs...)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i, a := range arts {
		c := a.C
		m := workload.MeasureLog(c.Log, c.Elapsed, c.MeanUtilization)
		fmt.Fprintf(&sb, "topo=%q messages=%d hops=%.2f latency=%.0f blocked=%.0f elapsed=%d\n",
			specs[i].Topology, m.Messages, m.MeanHops, m.MeanLatencyNS, m.MeanBlockedNS, c.Elapsed)
	}
	return sb.String()
}

// TestParallelSweepIsDeterministic is the pipeline's central guarantee:
// the full evaluation, executed across an 8-wide worker pool, is
// byte-for-byte identical to the sequential run. It also keeps the
// content assertions of the original sweep test.
func TestParallelSweepIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep, twice")
	}
	seq := sweep(t, 1)
	par := sweep(t, 8)
	if seq != par {
		i := 0
		for i < len(seq) && i < len(par) && seq[i] == par[i] {
			i++
		}
		lo := max(0, i-120)
		t.Fatalf("parallel sweep diverges from sequential at byte %d:\nsequential: %q\nparallel:   %q",
			i, seq[lo:min(len(seq), i+120)], par[lo:min(len(par), i+120)])
	}

	// Tracing must be invisible to results: a fully observed parallel
	// sweep — spans, metrics, progress, Chrome trace written to disk —
	// is byte-identical to the untraced sequential baseline.
	ob := obs.NewObserver(obs.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), time.Millisecond))
	ob.TracePath = filepath.Join(t.TempDir(), "sweep.trace.json")
	traced := sweepObserved(t, 8, ob)
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
	if traced != seq {
		t.Fatal("traced sweep output differs from untraced sequential baseline")
	}
	if len(ob.Tracer.Events()) == 0 {
		t.Fatal("traced sweep recorded no trace events")
	}

	// Distribution must be invisible too: the same sweep partitioned
	// across a two-worker lease fleet over HTTP is byte-identical to
	// the sequential local run.
	distributed := sweepDistributed(t)
	if distributed != seq {
		i := 0
		for i < len(seq) && i < len(distributed) && seq[i] == distributed[i] {
			i++
		}
		lo := max(0, i-120)
		t.Fatalf("distributed sweep diverges from sequential at byte %d:\nsequential:  %q\ndistributed: %q",
			i, seq[lo:min(len(seq), i+120)], distributed[lo:min(len(distributed), i+120)])
	}
	if raw, err := os.ReadFile(ob.TracePath); err != nil || !json.Valid(raw) {
		t.Fatalf("Chrome trace at %s invalid: err=%v valid=%t", ob.TracePath, err, err == nil && json.Valid(raw))
	}

	// The invariant holds across fabrics too: a parallel sweep over the
	// mesh / 3-D torus / fat-tree topology matrix renders byte-identically
	// to its sequential run, and the fabrics genuinely differ.
	topoSeq := sweepTopologyMatrix(t, 1)
	if topoPar := sweepTopologyMatrix(t, 8); topoPar != topoSeq {
		t.Fatalf("topology-matrix sweep diverges from sequential:\nsequential: %q\nparallel:   %q",
			topoSeq, topoPar)
	}
	topoLines := strings.Split(strings.TrimSpace(topoSeq), "\n")
	if len(topoLines) != 3 {
		t.Fatalf("topology matrix rendered %d rows, want 3:\n%s", len(topoLines), topoSeq)
	}
	for i, a := range topoLines {
		for _, b := range topoLines[i+1:] {
			if a[strings.Index(a, " "):] == b[strings.Index(b, " "):] {
				t.Fatalf("two fabrics produced identical metrics:\n%s", topoSeq)
			}
		}
	}
	for _, want := range []string{
		"Table 1: application suite",
		"Table 2: message inter-arrival time fits, shared memory",
		"Table 3: message inter-arrival time fits, message passing",
		"Table 4: message volume characteristics",
		"inter-arrival CDF, measured vs",
		"Message Distribution for p0",
		"synthetic-traffic validation",
		"Table 5: locality and burstiness",
		"Message generation rate over time",
		"latency vs offered load",
		"analytic M/G/1 model vs simulation",
		"Ablation: mesh contention",
		"Ablation: virtual channels",
		"Ablation: cache size",
		"Ablation: barrier algorithm",
		"Ablation: topology",
		"Table 6: per-phase inter-arrival fits",
		"Table 7: execution-time profiles",
		"Ablation: coherence protocol",
		"Ablation: routing algorithm",
		"1D-FFT", "IS", "Cholesky", "Nbody", "Maxflow", "3D-FFT", "MG",
	} {
		if !strings.Contains(seq, want) {
			t.Fatalf("experiment output missing %q", want)
		}
	}
}

// TestParallelPoolSmoke drives real concurrent runs through a shared
// engine — the path the race detector needs to see (the heavyweight
// determinism test above is skipped under -short, this one is not).
func TestParallelPoolSmoke(t *testing.T) {
	eng, err := pipeline.New(pipeline.Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerWith(apps.ScaleSmall, eng)
	var sb strings.Builder
	if err := r.Table1(&sb, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1: application suite") {
		t.Fatalf("output:\n%s", sb.String())
	}
	if eng.Metrics().Runs.Load() != 7 {
		t.Fatalf("runs executed = %d, want 7", eng.Metrics().Runs.Load())
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner(apps.ScaleSmall)
	a, err := r.characterize("Nbody", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.characterize("Nbody", 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("characterization not cached")
	}
	c, err := r.characterize("Nbody", 8)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different processor counts share a cache entry")
	}
}

// TestRunnersAtDifferentScalesDoNotCollide is the regression test for the
// old Runner's cache key, which omitted the scale: two runners sharing one
// engine at different scales must get different runs.
func TestRunnersAtDifferentScalesDoNotCollide(t *testing.T) {
	eng := pipeline.NewDefault()
	small := NewRunnerWith(apps.ScaleSmall, eng)
	full := NewRunnerWith(apps.ScaleFull, eng)
	a, err := small.characterize("Nbody", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := full.characterize("Nbody", 4)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("small- and full-scale runs share a cache entry")
	}
	if a.Messages == b.Messages {
		t.Fatalf("scales indistinguishable: both ran %d messages", a.Messages)
	}
	if eng.Metrics().Runs.Load() != 2 {
		t.Fatalf("runs executed = %d, want 2", eng.Metrics().Runs.Load())
	}
}

// TestRunnersWithDistinctConfigsDoNotCollide pins the same property for
// machine-configuration overrides (the old key also omitted the barrier).
func TestRunnersWithDistinctConfigsDoNotCollide(t *testing.T) {
	eng := pipeline.NewDefault()
	r := NewRunnerWith(apps.ScaleSmall, eng)
	var sb strings.Builder
	if err := r.AblationBarrier(&sb, 4); err != nil {
		t.Fatal(err)
	}
	if eng.Metrics().Runs.Load() != 2 {
		t.Fatalf("barrier variants collided: %d runs executed, want 2", eng.Metrics().Runs.Load())
	}
}

func TestAblationVirtualChannelsImproves(t *testing.T) {
	r := NewRunner(apps.ScaleSmall)
	var sb strings.Builder
	if err := r.AblationVirtualChannels(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "VCs") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

// TestInterruptedSweepResumesByteIdentical is the resilience acceptance
// test: a sweep interrupted partway through (context cancelled once the
// journal records some completions), then resumed from the journal and
// the disk cache, repeats zero simulations and emits byte-identical
// output to an uninterrupted run.
func TestInterruptedSweepResumesByteIdentical(t *testing.T) {
	cacheDir := t.TempDir()
	journalPath := filepath.Join(t.TempDir(), "sweep.journal")
	const procs, total = 4, 7 // Table1 characterizes all 7 suite apps

	// Phase 1: start the sweep, cancel once two runs are journaled.
	j1, err := pipeline.OpenJournal(journalPath, false)
	if err != nil {
		t.Fatal(err)
	}
	eng1, err := pipeline.New(pipeline.Options{Parallel: 1, CacheDir: cacheDir, Journal: j1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for j1.Len() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	var interrupted strings.Builder
	err = NewRunnerWith(apps.ScaleSmall, eng1).WithContext(ctx).Table1(&interrupted, procs)
	interruptedAt := j1.Len()
	if cerr := eng1.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if interruptedAt >= total {
		// The sweep outran the interrupt; the resume below still must
		// serve everything from cache, but the test loses its point.
		t.Logf("interrupt landed after completion (%d journaled)", interruptedAt)
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep returned %v, want context.Canceled in the chain", err)
	}

	// Phase 2: resume. Only the unjournaled specs may simulate.
	j2, err := pipeline.OpenJournal(journalPath, true)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != interruptedAt {
		t.Fatalf("journal lost records across reopen: %d vs %d", j2.Len(), interruptedAt)
	}
	eng2, err := pipeline.New(pipeline.Options{Parallel: 1, CacheDir: cacheDir, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	var resumed strings.Builder
	if err := NewRunnerWith(apps.ScaleSmall, eng2).Table1(&resumed, procs); err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	defer eng2.Close()
	if got := eng2.Metrics().Runs.Load(); got != int64(total-interruptedAt) {
		t.Fatalf("resume repeated simulations: %d runs executed, want %d", got, total-interruptedAt)
	}
	if got := eng2.Metrics().Resumed.Load(); got != int64(interruptedAt) {
		t.Fatalf("Resumed = %d, want %d", got, interruptedAt)
	}

	// Phase 3: the resumed output is byte-identical to an uninterrupted run.
	var reference strings.Builder
	if err := NewRunner(apps.ScaleSmall).Table1(&reference, procs); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != reference.String() {
		t.Fatalf("resumed output differs from the uninterrupted run:\nresumed:\n%s\nreference:\n%s",
			resumed.String(), reference.String())
	}
}
