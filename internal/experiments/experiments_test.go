package experiments

import (
	"strings"
	"testing"

	"commchar/internal/apps"
)

func TestAllExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	r := NewRunner(apps.ScaleSmall)
	var sb strings.Builder
	if err := r.All(&sb, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1: application suite",
		"Table 2: message inter-arrival time fits, shared memory",
		"Table 3: message inter-arrival time fits, message passing",
		"Table 4: message volume characteristics",
		"inter-arrival CDF, measured vs",
		"Message Distribution for p0",
		"synthetic-traffic validation",
		"Table 5: locality and burstiness",
		"Message generation rate over time",
		"latency vs offered load",
		"analytic M/G/1 model vs simulation",
		"Ablation: mesh contention",
		"Ablation: virtual channels",
		"Ablation: cache size",
		"Ablation: barrier algorithm",
		"Ablation: topology",
		"Table 6: per-phase inter-arrival fits",
		"Table 7: execution-time profiles",
		"Ablation: coherence protocol",
		"Ablation: routing algorithm",
		"1D-FFT", "IS", "Cholesky", "Nbody", "Maxflow", "3D-FFT", "MG",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("experiment output missing %q", want)
		}
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner(apps.ScaleSmall)
	a, err := r.characterize("Nbody", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.characterize("Nbody", 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("characterization not cached")
	}
	c, err := r.characterize("Nbody", 8)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different processor counts share a cache entry")
	}
}

func TestAblationVirtualChannelsImproves(t *testing.T) {
	r := NewRunner(apps.ScaleSmall)
	var sb strings.Builder
	if err := r.AblationVirtualChannels(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "VCs") {
		t.Fatalf("output:\n%s", sb.String())
	}
}
