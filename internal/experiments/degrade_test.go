package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"commchar/internal/cli"
)

// TestSweepContinuesPastFailures: a sweep with one erroring and one
// panicking step still emits every other step's output, and reports the
// failures in an aggregated structured error.
func TestSweepContinuesPastFailures(t *testing.T) {
	steps := []Step{
		{Name: "ok-1", Key: "ok-1", Run: func(w io.Writer) error {
			fmt.Fprintln(w, "result one")
			return nil
		}},
		{Name: "bad-config", Key: "bad-config", Run: func(w io.Writer) error {
			return errors.New("invalid configuration: 0 processors")
		}},
		{Name: "panics", Key: "panics", Run: func(w io.Writer) error {
			panic("index out of range")
		}},
		{Name: "ok-2", Key: "ok-2", Run: func(w io.Writer) error {
			fmt.Fprintln(w, "result two")
			return nil
		}},
	}
	var buf bytes.Buffer
	err := RunSteps(&buf, steps)

	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("expected SweepError, got %v", err)
	}
	if len(se.Failed) != 2 || se.Total != 4 {
		t.Fatalf("wrong tally: %+v", se)
	}
	if se.Failed[0].Name != "bad-config" || se.Failed[1].Name != "panics" {
		t.Fatalf("wrong failed steps: %+v", se.Failed)
	}
	var pe *cli.PanicError
	if !errors.As(se.Failed[1].Err, &pe) {
		t.Fatalf("panic not converted to PanicError: %v", se.Failed[1].Err)
	}
	out := buf.String()
	// Both healthy steps ran to completion, including the one after the
	// panic, and the failures are visible inline.
	for _, want := range []string{"result one", "result two", "invalid configuration", "FAILED"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	msg := err.Error()
	if !strings.Contains(msg, "2 of 4 steps failed") {
		t.Errorf("aggregate message wrong: %s", msg)
	}
}

// TestSweepCleanRunReturnsNil: no failures, no error.
func TestSweepCleanRunReturnsNil(t *testing.T) {
	var buf bytes.Buffer
	err := RunSteps(&buf, []Step{
		{Name: "only", Key: "only", Run: func(w io.Writer) error { return nil }},
	})
	if err != nil {
		t.Fatalf("clean sweep errored: %v", err)
	}
}
