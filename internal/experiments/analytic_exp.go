package experiments

import (
	"fmt"
	"io"

	"commchar/internal/analytic"
	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/report"
	"commchar/internal/sim"
	"commchar/internal/stats"
	"commchar/internal/workload"
)

// FigureAnalyticModel validates the M/G/1 analytic network model against
// the simulator, under the uniform assumption at several loads and under
// the fitted 1D-FFT workload — demonstrating the paper's proposed use of
// the characterization: realistic inputs for analytical ICN models.
func (r *Runner) FigureAnalyticModel(w io.Writer, procs int) error {
	cfg := core.MeshFor(procs)
	lengths := []stats.LengthCount{{Bytes: 8, Count: 3}, {Bytes: 40, Count: 2}}

	simulate := func(g *workload.Generator, until sim.Duration, seed uint64) (workload.Metrics, error) {
		s := sim.New()
		net := mesh.New(s, cfg)
		if err := g.Drive(s, net, sim.Time(until), seed); err != nil {
			return workload.Metrics{}, err
		}
		s.Run()
		return workload.MeasureLog(net.Log(), s.Now(), net.MeanUtilization()), nil
	}

	t := &report.Table{
		Title:   fmt.Sprintf("Figure: analytic M/G/1 model vs simulation (%d processors)", procs),
		Columns: []string{"Workload", "MaxRho", "Analytic(ns)", "Simulated(ns)", "RelErr"},
	}

	// Uniform Poisson at three loads.
	for _, meanGap := range []float64{12000, 6000, 3000} {
		aw := analytic.Uniform(procs, 1/meanGap, lengths)
		pred, err := analytic.Predict(aw, cfg)
		if err != nil {
			return err
		}
		g := workload.UniformPoisson(procs, meanGap, lengths)
		m, err := simulate(g, 4*sim.Millisecond, 5)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("uniform, gap %.0fus", meanGap/1000),
			fmt.Sprintf("%.3f", pred.MaxRho),
			fmt.Sprintf("%.0f", pred.Latency),
			fmt.Sprintf("%.0f", m.MeanLatencyNS),
			fmt.Sprintf("%.3f", relErr(pred.Latency, m.MeanLatencyNS)))
	}

	// The fitted 1D-FFT workload: analytic model fed by the measured
	// characterization, simulation fed by the synthetic generator.
	c, err := r.characterize("1D-FFT", procs)
	if err != nil {
		return err
	}
	aw, err := analytic.FromCharacterization(c)
	if err != nil {
		return err
	}
	pred, err := analytic.Predict(aw, cfg)
	if err != nil {
		return err
	}
	gen, err := workload.FromCharacterization(c)
	if err != nil {
		return err
	}
	s := sim.New()
	net := mesh.New(s, cfg)
	if err := gen.Drive(s, net, c.Elapsed, 5); err != nil {
		return err
	}
	s.Run()
	m := workload.MeasureLog(net.Log(), s.Now(), net.MeanUtilization())
	t.AddRow("1D-FFT (fitted model)",
		fmt.Sprintf("%.3f", pred.MaxRho),
		fmt.Sprintf("%.0f", pred.Latency),
		fmt.Sprintf("%.0f", m.MeanLatencyNS),
		fmt.Sprintf("%.3f", relErr(pred.Latency, m.MeanLatencyNS)))

	t.Render(w)
	return nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	e := (got - want) / want
	if e < 0 {
		return -e
	}
	return e
}
