package experiments

import (
	"fmt"
	"io"

	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/pipeline"
	"commchar/internal/report"
	"commchar/internal/sim"
	"commchar/internal/spasm"
	"commchar/internal/workload"
)

// Table5 prints the locality and burstiness view of the suite: hop-distance
// distribution, nearest-neighbour fraction, burst ratio, and the
// machine-wide favorite receiver.
func (r *Runner) Table5(w io.Writer, procs int) error {
	cs, err := r.characterizeAll(append(append([]string{}, sharedNames...), mpNames...), procs)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Table 5: locality and burstiness (%d processors)", procs),
		Columns: []string{"Application", "MeanHops", "NeighbourFrac", "BurstRatio", "FavoriteRecv", "FavShare"},
	}
	for _, c := range cs {
		loc := c.AnalyzeLocality()
		rp := c.AnalyzeReceivers()
		t.AddRow(c.Name,
			fmt.Sprintf("%.2f", loc.MeanHops),
			fmt.Sprintf("%.3f", loc.NeighbourFraction),
			fmt.Sprintf("%.1f", c.BurstRatio(core.RateWindows)),
			fmt.Sprintf("p%d", rp.Favorite),
			fmt.Sprintf("%.3f", rp.FavoriteShare))
	}
	t.Render(w)
	return nil
}

// FigureRateOverTime renders the generation-rate series for a contrasting
// pair: a phase-structured code (1D-FFT) and a dynamic one (Cholesky).
func (r *Runner) FigureRateOverTime(w io.Writer, procs int) error {
	for _, name := range []string{"1D-FFT", "Cholesky"} {
		c, err := r.characterize(name, procs)
		if err != nil {
			return err
		}
		report.RateFigure(w, c, 24, 40)
		fmt.Fprintln(w)
	}
	return nil
}

// FigureLatencyLoad reproduces the classic interconnection-network design
// curve — mean latency versus offered load — under two workload models at
// matched aggregate rate: the literature's uniform-Poisson assumption and
// the application-derived model fitted from 1D-FFT. The application
// traffic's bursts and hot spots cost latency the uniform assumption never
// predicts: the paper's core motivation.
func (r *Runner) FigureLatencyLoad(w io.Writer, procs int) error {
	c, err := r.characterize("1D-FFT", procs)
	if err != nil {
		return err
	}
	appGen, err := workload.FromCharacterization(c)
	if err != nil {
		return err
	}
	// Matched uniform baseline: same per-source mean gap and length mix.
	meanGap := c.Aggregate.Summary.Mean
	uniGen := workload.UniformPoisson(procs, meanGap, c.Volume.Distinct)

	const duration = 2 * sim.Millisecond
	drive := func(g *workload.Generator, seed uint64) (workload.Metrics, error) {
		s := sim.New()
		net := mesh.New(s, core.MeshFor(procs))
		if err := g.Drive(s, net, sim.Time(duration), seed); err != nil {
			return workload.Metrics{}, err
		}
		s.Run()
		return workload.MeasureLog(net.Log(), s.Now(), net.MeanUtilization()), nil
	}

	t := &report.Table{
		Title: fmt.Sprintf("Figure: latency vs offered load, uniform assumption vs fitted 1D-FFT model (%d processors)",
			procs),
		Columns: []string{"LoadFactor", "Workload", "Rate(msg/us)", "MeanLatency(ns)", "MeanBlocked(ns)", "Util"},
	}
	for _, f := range []float64{0.5, 1.0, 1.5, 2.0, 2.5} {
		u, err := drive(uniGen.Scaled(f), 11)
		if err != nil {
			return err
		}
		a, err := drive(appGen.Scaled(f), 11)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%.1f", f), "uniform",
			fmt.Sprintf("%.3f", u.MessageRate),
			fmt.Sprintf("%.0f", u.MeanLatencyNS),
			fmt.Sprintf("%.0f", u.MeanBlockedNS),
			fmt.Sprintf("%.4f", u.MeanUtilization))
		t.AddRow("", "1D-FFT model",
			fmt.Sprintf("%.3f", a.MessageRate),
			fmt.Sprintf("%.0f", a.MeanLatencyNS),
			fmt.Sprintf("%.0f", a.MeanBlockedNS),
			fmt.Sprintf("%.4f", a.MeanUtilization))
	}
	t.Render(w)
	return nil
}

// AblationBarrier compares the linear and tree barrier implementations on
// the barrier-heavy Nbody code: the synchronization algorithm reshapes the
// spatial attribute (p0's receiver share) without changing the computation.
// Both variants run concurrently through the pipeline.
func (r *Runner) AblationBarrier(w io.Writer, procs int) error {
	kinds := []spasm.BarrierKind{spasm.BarrierLinear, spasm.BarrierTree}
	labels := []string{"linear (root p0)", "binary tree"}
	specs := make([]pipeline.RunSpec, len(kinds))
	for i, kind := range kinds {
		specs[i] = r.spec("Nbody", procs)
		specs[i].Barrier = kind
	}
	arts, err := r.artifacts(specs...)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: barrier algorithm effect on Nbody (%d processors)", procs),
		Columns: []string{"Barrier", "Messages", "Makespan(ms)", "p0RecvShare", "MeanLatency(ns)"},
	}
	for i, label := range labels {
		c := arts[i].C
		rp := c.AnalyzeReceivers()
		t.AddRow(label,
			fmt.Sprintf("%d", c.Messages),
			fmt.Sprintf("%.3f", float64(c.Elapsed)/1e6),
			fmt.Sprintf("%.3f", float64(rp.Counts[0])/float64(c.Messages)),
			fmt.Sprintf("%.0f", c.MeanLatencyNS))
	}
	t.Render(w)
	return nil
}

// AblationTopology drives identical uniform traffic through every fabric
// family sized for 16 endpoints — 2-D mesh, torus, hypercube, fat tree,
// dragonfly — comparing distance and latency: the topology studies
// ([2], [4]) the characterization methodology feeds.
func (r *Runner) AblationTopology(w io.Writer) error {
	const nodes = 16
	configs := []struct {
		label string
		cfg   mesh.Config
	}{
		{"4x4 mesh", mesh.DefaultConfig(4, 4)},
		{"4x4 torus (2 VCs)", mesh.KAryConfig(mesh.TorusTopology, 4, 4)},
		{"4-cube", mesh.HypercubeConfig(4)},
		{"fat tree 4:2", mesh.FatTreeConfig(4, 2)},
		{"dragonfly a4h1 (2 VCs)", mesh.DragonflyConfig(4, 1)},
	}
	t := &report.Table{
		Title:   "Ablation: topology under identical uniform traffic (16 nodes)",
		Columns: []string{"Topology", "Messages", "MeanHops", "MeanLatency(ns)", "MeanBlocked(ns)"},
	}
	for _, tc := range configs {
		s := sim.New()
		net := mesh.New(s, tc.cfg)
		st := sim.NewStream(0x70B0)
		for src := 0; src < nodes; src++ {
			tm := sim.Time(0)
			for i := 0; i < 500; i++ {
				tm += sim.Time(st.Exponential(1500)) + 1
				dst := st.IntN(nodes - 1)
				if dst >= src {
					dst++
				}
				net.Inject(mesh.Message{
					ID: net.NextID(), Src: src, Dst: dst, Bytes: 40, Inject: tm,
				}, nil)
			}
		}
		s.Run()
		m := workload.MeasureLog(net.Log(), s.Now(), net.MeanUtilization())
		t.AddRow(tc.label,
			fmt.Sprintf("%d", m.Messages),
			fmt.Sprintf("%.2f", m.MeanHops),
			fmt.Sprintf("%.0f", m.MeanLatencyNS),
			fmt.Sprintf("%.0f", m.MeanBlockedNS))
	}
	t.Render(w)
	return nil
}
