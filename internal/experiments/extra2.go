package experiments

import (
	"fmt"
	"io"

	"commchar/internal/ccnuma"
	"commchar/internal/mesh"
	"commchar/internal/pipeline"
	"commchar/internal/report"
	"commchar/internal/stats"
)

// Table6 prints per-phase inter-arrival fits for the message-passing
// applications — the paper's observation that phase-structured MPI codes
// need per-phase rather than whole-run temporal models.
func (r *Runner) Table6(w io.Writer, procs int) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Table 6: per-phase inter-arrival fits, message passing (%d processors)", procs),
		Columns: []string{"Application", "Phase", "Msgs", "Span(ms)", "MeanGap(us)", "CV", "BestFit", "R2"},
	}
	for _, name := range mpNames {
		c, err := r.characterize(name, procs)
		if err != nil {
			return err
		}
		bursts := c.Bursts(0)
		if len(bursts) > 8 {
			// Fine-grained burst structure (one segment per collective
			// round): the informative model is the phase-level cadence —
			// the distribution of gaps between burst starts.
			var msgs int
			starts := make([]float64, 0, len(bursts))
			for _, b := range bursts {
				msgs += b.Messages
				starts = append(starts, float64(b.Start))
			}
			gaps := make([]float64, 0, len(starts)-1)
			for i := 1; i < len(starts); i++ {
				gaps = append(gaps, starts[i]-starts[i-1])
			}
			fitName, r2 := "-", "-"
			var meanGap, cv float64
			if sum := stats.Summarize(gaps); sum.N > 0 {
				meanGap, cv = sum.Mean, sum.CV
			}
			if fits, err := stats.FitInterarrival(gaps); err == nil {
				fitName = fits[0].Dist.Name()
				r2 = fmt.Sprintf("%.4f", fits[0].R2)
			}
			t.AddRow(c.Name, fmt.Sprintf("%d bursts", len(bursts)),
				fmt.Sprintf("%d", msgs), "-",
				fmt.Sprintf("%.2f", meanGap/1000),
				fmt.Sprintf("%.2f", cv),
				fitName+" (burst cadence)", r2)
			continue
		}
		phases, err := c.SplitPhases(0, 0)
		if err != nil {
			// A code without detectable phases still gets its whole-run row.
			name2, _, r2 := report.FitRow(c.BestAggregate())
			t.AddRow(c.Name, "whole-run", fmt.Sprintf("%d", c.Messages), "-",
				fmt.Sprintf("%.2f", c.Aggregate.Summary.Mean/1000),
				fmt.Sprintf("%.2f", c.Aggregate.Summary.CV), name2, r2)
			continue
		}
		for i, ph := range phases {
			fitName, _, r2 := report.FitRow(ph.C.BestAggregate())
			label := c.Name
			if i > 0 {
				label = ""
			}
			t.AddRow(label, fmt.Sprintf("%d", ph.Index),
				fmt.Sprintf("%d", ph.C.Messages),
				fmt.Sprintf("%.3f", float64(ph.End-ph.Start)/1e6),
				fmt.Sprintf("%.2f", ph.C.Aggregate.Summary.Mean/1000),
				fmt.Sprintf("%.2f", ph.C.Aggregate.Summary.CV),
				fitName, r2)
		}
	}
	t.Render(w)
	return nil
}

// Table7 prints the SPASM-style execution profiles of the shared-memory
// suite: where each application's time goes (compute, memory stalls,
// synchronization stalls), averaged over processors. The whole suite runs
// concurrently through the pipeline; profiles ride along on the artifacts.
func (r *Runner) Table7(w io.Writer, procs int) error {
	specs := make([]pipeline.RunSpec, len(sharedNames))
	for i, name := range sharedNames {
		specs[i] = r.spec(name, procs)
	}
	arts, err := r.artifacts(specs...)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Table 7: execution-time profiles, shared memory (%d processors)", procs),
		Columns: []string{"Application", "Makespan(ms)", "Compute%", "Memory%", "Sync%"},
	}
	for i, name := range sharedNames {
		var comp, mem, syn, end float64
		for _, pr := range arts[i].Profiles {
			comp += float64(pr.Compute)
			mem += float64(pr.Memory)
			syn += float64(pr.Sync)
			end += float64(pr.End)
		}
		if end == 0 {
			continue
		}
		t.AddRow(name,
			fmt.Sprintf("%.3f", float64(arts[i].C.Elapsed)/1e6),
			fmt.Sprintf("%.1f", 100*comp/end),
			fmt.Sprintf("%.1f", 100*mem/end),
			fmt.Sprintf("%.1f", 100*syn/end))
	}
	t.Render(w)
	return nil
}

// AblationProtocol compares MSI and MESI on 1D-FFT: the Exclusive state
// removes upgrade traffic for read-then-write private data, shrinking the
// offered workload itself. Both variants run concurrently through the
// pipeline; coherence statistics ride along on the artifacts.
func (r *Runner) AblationProtocol(w io.Writer, procs int) error {
	protocols := []ccnuma.Protocol{ccnuma.MSI, ccnuma.MESI}
	specs := make([]pipeline.RunSpec, len(protocols))
	for i, pr := range protocols {
		specs[i] = r.spec("1D-FFT", procs)
		specs[i].Protocol = pr
	}
	arts, err := r.artifacts(specs...)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: coherence protocol effect on 1D-FFT (%d processors)", procs),
		Columns: []string{"Protocol", "Messages", "Upgrades", "SilentUpgr", "Makespan(ms)", "MeanGap(us)"},
	}
	for i, pr := range protocols {
		c := arts[i].C
		var st ccnuma.Stats
		if arts[i].MemStats != nil {
			st = *arts[i].MemStats
		}
		t.AddRow(pr.String(),
			fmt.Sprintf("%d", c.Messages),
			fmt.Sprintf("%d", st.Upgrades),
			fmt.Sprintf("%d", st.SilentUpgrades),
			fmt.Sprintf("%.3f", float64(c.Elapsed)/1e6),
			fmt.Sprintf("%.2f", c.Aggregate.Summary.Mean/1000))
	}
	t.Render(w)
	return nil
}

// AblationRouting compares deterministic XY with west-first minimal
// adaptive routing under IS's traffic. Both variants run concurrently
// through the pipeline.
func (r *Runner) AblationRouting(w io.Writer, procs int) error {
	algs := []mesh.RoutingAlgorithm{mesh.RoutingDimensionOrder, mesh.RoutingWestFirst}
	specs := make([]pipeline.RunSpec, len(algs))
	for i, alg := range algs {
		specs[i] = r.spec("IS", procs)
		specs[i].Routing = alg
	}
	arts, err := r.artifacts(specs...)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: routing algorithm effect on IS (%d processors)", procs),
		Columns: []string{"Routing", "Messages", "MeanLatency(ns)", "MeanBlocked(ns)", "Makespan(ms)"},
	}
	for i, alg := range algs {
		c := arts[i].C
		t.AddRow(alg.String(),
			fmt.Sprintf("%d", c.Messages),
			fmt.Sprintf("%.0f", c.MeanLatencyNS),
			fmt.Sprintf("%.0f", c.MeanBlockedNS),
			fmt.Sprintf("%.3f", float64(c.Elapsed)/1e6))
	}
	t.Render(w)
	return nil
}
