// Package experiments regenerates every table and figure of the paper's
// evaluation section (as reconstructed in DESIGN.md), plus the ablations.
// The same entry points back both the `experiments` command and the
// benchmark harness in bench_test.go, so "go test -bench" reproduces the
// paper end to end.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"commchar/internal/apps"
	"commchar/internal/cli"
	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/pipeline"
	"commchar/internal/report"
	"commchar/internal/sim"
	"commchar/internal/workload"
)

// Runner drives the evaluation through the run pipeline: independent
// characterization runs are scheduled across the engine's worker pool and
// memoized (in memory and, if the engine has a cache directory, on disk),
// so tables and figures drawing on the same application run it only once —
// across invocations, with a warm disk cache, zero times.
type Runner struct {
	Scale apps.Scale
	eng   *pipeline.Engine
	ctx   context.Context
}

// NewRunner returns a runner at the given scale on a default engine
// (GOMAXPROCS-wide worker pool, no disk cache).
func NewRunner(scale apps.Scale) *Runner {
	return NewRunnerWith(scale, pipeline.NewDefault())
}

// NewRunnerWith returns a runner backed by the given engine. Runners at
// different scales may safely share one engine: the pipeline's cache key
// covers the full spec, scale included.
func NewRunnerWith(scale apps.Scale, eng *pipeline.Engine) *Runner {
	//lint:allow ctxflow a fresh Runner starts uncancellable by design; WithContext rebinds it to the caller's ctx
	return &Runner{Scale: scale, eng: eng, ctx: context.Background()}
}

// WithContext returns a runner whose characterization runs are cancelled
// with ctx (a SIGINT'd tool drains the pipeline instead of dying mid-run).
func (r *Runner) WithContext(ctx context.Context) *Runner {
	r2 := *r
	r2.ctx = ctx
	return &r2
}

// Engine exposes the runner's engine (for metrics summaries).
func (r *Runner) Engine() *pipeline.Engine { return r.eng }

// spec builds the standard-machine spec for a suite application.
func (r *Runner) spec(name string, procs int) pipeline.RunSpec {
	return pipeline.RunSpec{App: name, Procs: procs, Scale: r.Scale}
}

// artifacts fans the specs out across the engine's worker pool and returns
// them in order: the parallel core of every table and figure.
func (r *Runner) artifacts(specs ...pipeline.RunSpec) ([]*pipeline.Artifact, error) {
	arts, err := r.eng.RunAllContext(r.ctx, specs...)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return arts, nil
}

func (r *Runner) characterize(name string, procs int) (*core.Characterization, error) {
	art, err := r.eng.RunContext(r.ctx, r.spec(name, procs))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	return art.C, nil
}

func (r *Runner) characterizeAll(names []string, procs int) ([]*core.Characterization, error) {
	specs := make([]pipeline.RunSpec, len(names))
	for i, n := range names {
		specs[i] = r.spec(n, procs)
	}
	arts, err := r.artifacts(specs...)
	if err != nil {
		return nil, err
	}
	out := make([]*core.Characterization, len(arts))
	for i, a := range arts {
		out[i] = a.C
	}
	return out, nil
}

var (
	sharedNames = []string{"1D-FFT", "IS", "Cholesky", "Nbody", "Maxflow"}
	mpNames     = []string{"3D-FFT", "MG"}
)

// Table1 prints the application-suite summary: the paper's workload table.
func (r *Runner) Table1(w io.Writer, procs int) error {
	cs, err := r.characterizeAll(append(append([]string{}, sharedNames...), mpNames...), procs)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Table 1: application suite (%d processors)", procs),
		Columns: []string{"Application", "Strategy", "Messages", "TotalKB", "SimTime(ms)", "MeanLatency(ns)"},
	}
	for _, c := range cs {
		t.AddRow(c.Name, string(c.Strategy),
			fmt.Sprintf("%d", c.Messages),
			fmt.Sprintf("%.1f", float64(c.TotalBytes)/1024),
			fmt.Sprintf("%.3f", float64(c.Elapsed)/1e6),
			fmt.Sprintf("%.0f", c.MeanLatencyNS))
	}
	t.Render(w)
	return nil
}

// Table2 prints the shared-memory inter-arrival fits: the headline result.
func (r *Runner) Table2(w io.Writer, procs int) error {
	cs, err := r.characterizeAll(sharedNames, procs)
	if err != nil {
		return err
	}
	report.TemporalTable(
		fmt.Sprintf("Table 2: message inter-arrival time fits, shared memory (dynamic strategy, %d processors)", procs),
		cs).Render(w)
	return nil
}

// Table3 prints the message-passing inter-arrival fits.
func (r *Runner) Table3(w io.Writer, procs int) error {
	cs, err := r.characterizeAll(mpNames, procs)
	if err != nil {
		return err
	}
	report.TemporalTable(
		fmt.Sprintf("Table 3: message inter-arrival time fits, message passing (static strategy, %d processors)", procs),
		cs).Render(w)
	return nil
}

// Table4 prints the volume attribute for every application.
func (r *Runner) Table4(w io.Writer, procs int) error {
	cs, err := r.characterizeAll(append(append([]string{}, sharedNames...), mpNames...), procs)
	if err != nil {
		return err
	}
	report.VolumeTable(
		fmt.Sprintf("Table 4: message volume characteristics (%d processors)", procs), cs).Render(w)
	report.SpatialTable(
		fmt.Sprintf("Table 4b: spatial classification (%d processors)", procs), cs).Render(w)
	return nil
}

// FigureInterarrivalSM renders the empirical-vs-fitted inter-arrival CDF
// for every shared-memory application.
func (r *Runner) FigureInterarrivalSM(w io.Writer, procs int) error {
	cs, err := r.characterizeAll(sharedNames, procs)
	if err != nil {
		return err
	}
	for _, c := range cs {
		best := c.BestAggregate()
		if best == nil {
			continue
		}
		samples := c.AggregateGaps()
		report.CDFOverlay(w,
			fmt.Sprintf("Figure: %s inter-arrival CDF, measured vs %s (R²=%.4f)", c.Name, best.Dist, best.R2),
			samples, best.Dist, 16, 40)
		fmt.Fprintln(w)
	}
	return nil
}

// FigureSpatialSM renders the per-source spatial figures (p0 and p1, 8
// processors, as in the paper) for the shared-memory applications.
func (r *Runner) FigureSpatialSM(w io.Writer) error {
	cs, err := r.characterizeAll(sharedNames, 8)
	if err != nil {
		return err
	}
	for _, c := range cs {
		fmt.Fprintf(w, "--- %s ---\n", c.Name)
		report.SpatialFigure(w, c, 0, 40)
		report.SpatialFigure(w, c, 1, 40)
		fmt.Fprintln(w)
	}
	return nil
}

// FigureSpatialMP renders the spatial figures for the message-passing
// applications (the 3D-FFT broadcast-root favorite, MG nearest-neighbour).
func (r *Runner) FigureSpatialMP(w io.Writer) error {
	cs, err := r.characterizeAll(mpNames, 8)
	if err != nil {
		return err
	}
	for _, c := range cs {
		fmt.Fprintf(w, "--- %s ---\n", c.Name)
		report.SpatialFigure(w, c, 0, 40)
		report.SpatialFigure(w, c, 1, 40)
		fmt.Fprintln(w)
	}
	return nil
}

// FigureVolumeMP renders the message-volume distributions for the
// message-passing applications.
func (r *Runner) FigureVolumeMP(w io.Writer) error {
	cs, err := r.characterizeAll(mpNames, 8)
	if err != nil {
		return err
	}
	for _, c := range cs {
		report.VolumeFigure(w, c, 40)
		fmt.Fprintln(w)
	}
	return nil
}

// FigureSyntheticValidation regenerates traffic from the fitted models of
// 1D-FFT and IS and compares network metrics against the original runs —
// the methodology's payoff experiment.
func (r *Runner) FigureSyntheticValidation(w io.Writer, procs int) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure: synthetic-traffic validation (%d processors)", procs),
		Columns: []string{"Application", "Metric", "Original", "Synthetic", "RelErr"},
	}
	for _, name := range []string{"1D-FFT", "IS"} {
		c, err := r.characterize(name, procs)
		if err != nil {
			return err
		}
		v, err := workload.Validate(c, 0xC0FFEE)
		if err != nil {
			return fmt.Errorf("experiments: validate %s: %w", name, err)
		}
		t.AddRow(name, "msg rate (msg/us)",
			fmt.Sprintf("%.4f", v.Original.MessageRate),
			fmt.Sprintf("%.4f", v.Synthetic.MessageRate),
			fmt.Sprintf("%.3f", v.RateErr))
		t.AddRow("", "mean latency (ns)",
			fmt.Sprintf("%.0f", v.Original.MeanLatencyNS),
			fmt.Sprintf("%.0f", v.Synthetic.MeanLatencyNS),
			fmt.Sprintf("%.3f", v.LatencyErr))
		t.AddRow("", "mean link util",
			fmt.Sprintf("%.4f", v.Original.MeanUtilization),
			fmt.Sprintf("%.4f", v.Synthetic.MeanUtilization),
			fmt.Sprintf("%.3f", v.UtilErr))
	}
	t.Render(w)
	return nil
}

// AblationContention runs IS on the standard mesh and on a
// contention-free (very fast) mesh and compares blocking and the fitted
// temporal model: how much the network itself shapes the "workload". Both
// variants run concurrently through the pipeline.
func (r *Runner) AblationContention(w io.Writer, procs int) error {
	slowSpec, fastSpec := r.spec("IS", procs), r.spec("IS", procs)
	slowSpec.CycleTime = 25 * sim.Nanosecond
	fastSpec.CycleTime = 1 * sim.Nanosecond
	arts, err := r.artifacts(slowSpec, fastSpec)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: mesh contention effect on IS (%d processors)", procs),
		Columns: []string{"Mesh", "Messages", "MeanLatency(ns)", "MeanBlocked(ns)", "MeanGap(us)", "BestFit", "R2"},
	}
	for i, label := range []string{"25ns/flit (standard)", "1ns/flit (near-zero contention)"} {
		c := arts[i].C
		name, _, r2 := report.FitRow(c.BestAggregate())
		t.AddRow(label,
			fmt.Sprintf("%d", c.Messages),
			fmt.Sprintf("%.0f", c.MeanLatencyNS),
			fmt.Sprintf("%.0f", c.MeanBlockedNS),
			fmt.Sprintf("%.2f", c.Aggregate.Summary.Mean/1000),
			name, r2)
	}
	t.Render(w)
	return nil
}

// AblationVirtualChannels drives hot-spot synthetic traffic through the
// mesh with 1 and 4 virtual channels (cf. Kumar & Bhuyan [20]) and
// compares latency and blocking.
func (r *Runner) AblationVirtualChannels(w io.Writer) error {
	run := func(vcs int) (workload.Metrics, error) {
		s := sim.New()
		cfg := mesh.DefaultConfig(4, 4)
		cfg.VirtualChannels = vcs
		net := mesh.New(s, cfg)
		st := sim.NewStream(0x7C)
		// 30% hot-spot to node 0, remainder uniform, bursty arrivals.
		for src := 1; src < 16; src++ {
			t := sim.Time(0)
			for i := 0; i < 400; i++ {
				t += sim.Time(st.Exponential(2000)) + 1
				dst := 0
				if st.Float64() > 0.3 {
					dst = st.IntN(16)
					if dst == src {
						dst = (dst + 1) % 16
					}
				}
				if dst == src {
					continue
				}
				net.Inject(mesh.Message{
					ID: net.NextID(), Src: src, Dst: dst,
					Bytes: 40, Inject: t,
				}, nil)
			}
		}
		s.Run()
		return workload.MeasureLog(net.Log(), s.Now(), net.MeanUtilization()), nil
	}
	t := &report.Table{
		Title:   "Ablation: virtual channels under 30% hot-spot traffic (16 nodes)",
		Columns: []string{"VCs", "Messages", "MeanLatency(ns)", "MeanBlocked(ns)", "MeanUtil"},
	}
	for _, vcs := range []int{1, 2, 4} {
		m, err := run(vcs)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%d", vcs),
			fmt.Sprintf("%d", m.Messages),
			fmt.Sprintf("%.0f", m.MeanLatencyNS),
			fmt.Sprintf("%.0f", m.MeanBlockedNS),
			fmt.Sprintf("%.4f", m.MeanUtilization))
	}
	t.Render(w)
	return nil
}

// AblationCacheGeometry reruns 1D-FFT with different cache sizes and shows
// how cache capacity changes the message generation rate — the coupling
// between memory-system and network workload. All variants run
// concurrently through the pipeline.
func (r *Runner) AblationCacheGeometry(w io.Writer, procs int) error {
	sizesKB := []int{8, 64, 512}
	specs := make([]pipeline.RunSpec, len(sizesKB))
	for i, kb := range sizesKB {
		specs[i] = r.spec("1D-FFT", procs)
		specs[i].CacheBytes = kb << 10
	}
	arts, err := r.artifacts(specs...)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: cache size effect on 1D-FFT message generation (%d processors)", procs),
		Columns: []string{"Cache", "Messages", "MsgRate(msg/us)", "MeanGap(us)", "BestFit"},
	}
	for i, kb := range sizesKB {
		c := arts[i].C
		name, _, _ := report.FitRow(c.BestAggregate())
		rate := float64(c.Messages) / (float64(c.Elapsed) / 1000)
		t.AddRow(fmt.Sprintf("%dKB", kb),
			fmt.Sprintf("%d", c.Messages),
			fmt.Sprintf("%.3f", rate),
			fmt.Sprintf("%.2f", c.Aggregate.Summary.Mean/1000),
			name)
	}
	t.Render(w)
	return nil
}

// Step is one regenerable unit of the evaluation: a table, figure, or
// ablation. Key is the short selector used by the -only flag.
type Step struct {
	Name string
	Key  string
	Run  func(w io.Writer) error
}

// Steps returns every table, figure, and ablation of the evaluation, in
// presentation order.
func (r *Runner) Steps(procs int) []Step {
	return []Step{
		{"Table 1", "Table 1", func(w io.Writer) error { return r.Table1(w, procs) }},
		{"Table 2", "Table 2", func(w io.Writer) error { return r.Table2(w, procs) }},
		{"Table 3", "Table 3", func(w io.Writer) error { return r.Table3(w, procs) }},
		{"Table 4", "Table 4", func(w io.Writer) error { return r.Table4(w, procs) }},
		{"Table 5", "Table 5", func(w io.Writer) error { return r.Table5(w, procs) }},
		{"Table 6", "Table 6", func(w io.Writer) error { return r.Table6(w, procs) }},
		{"Table 7", "Table 7", func(w io.Writer) error { return r.Table7(w, procs) }},
		{"Figure: inter-arrival CDFs", "interarrival", func(w io.Writer) error { return r.FigureInterarrivalSM(w, procs) }},
		{"Figure: spatial (shared memory)", "spatial-sm", func(w io.Writer) error { return r.FigureSpatialSM(w) }},
		{"Figure: spatial (message passing)", "spatial-mp", func(w io.Writer) error { return r.FigureSpatialMP(w) }},
		{"Figure: volume (message passing)", "volume-mp", func(w io.Writer) error { return r.FigureVolumeMP(w) }},
		{"Figure: generation rate over time", "rate-over-time", func(w io.Writer) error { return r.FigureRateOverTime(w, procs) }},
		{"Figure: synthetic validation", "validation", func(w io.Writer) error { return r.FigureSyntheticValidation(w, procs) }},
		{"Figure: latency vs offered load", "latency-load", func(w io.Writer) error { return r.FigureLatencyLoad(w, procs) }},
		{"Figure: analytic model validation", "analytic", func(w io.Writer) error { return r.FigureAnalyticModel(w, procs) }},
		{"Ablation: contention", "ablation-contention", func(w io.Writer) error { return r.AblationContention(w, procs) }},
		{"Ablation: virtual channels", "ablation-vc", func(w io.Writer) error { return r.AblationVirtualChannels(w) }},
		{"Ablation: cache geometry", "ablation-cache", func(w io.Writer) error { return r.AblationCacheGeometry(w, procs) }},
		{"Ablation: barrier algorithm", "ablation-barrier", func(w io.Writer) error { return r.AblationBarrier(w, procs) }},
		{"Ablation: topology", "ablation-topology", func(w io.Writer) error { return r.AblationTopology(w) }},
		{"Ablation: coherence protocol", "ablation-protocol", func(w io.Writer) error { return r.AblationProtocol(w, procs) }},
		{"Ablation: routing algorithm", "ablation-routing", func(w io.Writer) error { return r.AblationRouting(w, procs) }},
	}
}

// StepFailure records one failed step of a sweep.
type StepFailure struct {
	Name string
	Err  error
}

// SweepError aggregates the failures of a sweep that kept going: the
// successful steps' output was already emitted, and this names what was
// lost.
type SweepError struct {
	Failed []StepFailure
	Total  int
}

func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d of %d steps failed:", len(e.Failed), e.Total)
	for _, f := range e.Failed {
		fmt.Fprintf(&b, "\n  %s: %v", f.Name, f.Err)
	}
	return b.String()
}

// Degraded marks a partially successful sweep (see cli.ExitCode): some
// steps emitted their results, the named ones did not. A sweep where
// every step failed is a plain failure, not a degraded success.
func (e *SweepError) Degraded() bool { return len(e.Failed) < e.Total }

// RunSteps runs each step under a panic recovery boundary and keeps going
// past failures, so one broken experiment cannot suppress the rest of the
// sweep's results. It returns a *SweepError naming the failed steps, or
// nil if everything passed.
func RunSteps(w io.Writer, steps []Step) error {
	//lint:allow ctxflow context-free compatibility wrapper over RunStepsContext
	return RunStepsContext(context.Background(), w, steps, false)
}

// RunStepsContext is RunSteps under cooperative cancellation and a
// failure policy. The context is checked between steps (and every
// step's runs observe it through the runner); once it is cancelled the
// sweep stops and reports ctx.Err, so an interrupted tool exits as
// cancelled, not as a cascade of step failures. With stopOnFailure the
// sweep stops at the first failed step instead of continuing.
func RunStepsContext(ctx context.Context, w io.Writer, steps []Step, stopOnFailure bool) error {
	var failed []StepFailure
	for _, s := range steps {
		if err := ctx.Err(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\n================ %s ================\n", s.Name)
		err := cli.Protect(func() error { return s.Run(w) })
		if err != nil {
			if ctx.Err() != nil {
				// The step failed because the sweep was cancelled out
				// from under it; report the interruption, not the step.
				return ctx.Err()
			}
			if stopOnFailure {
				return fmt.Errorf("%s: %w", s.Name, err)
			}
			fmt.Fprintf(w, "FAILED: %v (continuing)\n", err)
			failed = append(failed, StepFailure{Name: s.Name, Err: err})
		}
	}
	if len(failed) > 0 {
		return &SweepError{Failed: failed, Total: len(steps)}
	}
	return nil
}

// All regenerates every table, figure, and ablation in order, continuing
// past individual failures.
func (r *Runner) All(w io.Writer, procs int) error {
	return RunStepsContext(r.ctx, w, r.Steps(procs), false)
}
