package fault

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// The network fault layer mirrors the mesh fault layer one level up: a
// seeded NetSchedule makes every chaos decision a pure hash of
// (seed, rule, request sequence number), so a "flaky coordinator" run is
// exactly reproducible — the same requests fail the same way every time,
// regardless of goroutine interleaving. A RoundTripper applies the
// schedule to an http.Client, which is how the distributed sweep's chaos
// matrix injects drops, delays, connection resets, truncated bodies, and
// 5xx bursts between workers, coordinator, and blob store without
// touching a real network.
//
// Net schedules are written as compact specs, e.g.
//
//	drop:0.2            refuse the connection with probability 0.2
//	delay:0.5:20ms      delay the request 20ms with probability 0.5
//	reset:0.1           send the request, then lose the answer (ECONNRESET)
//	trunc:0.1           cut the response body short (unexpected EOF)
//	5xx:0.25            answer 503 without reaching the server
//	drop:1@0-10         windows are request ordinals: drop requests 0..9
//
// joined with ';', e.g. "drop:1@0-3;delay:0.5:10ms". Note the reset/drop
// distinction: a dropped request never reaches the server, a reset one
// does — its side effects land, only the acknowledgement is lost, which
// is exactly the race idempotent completions exist for.

// NetKind is the class of an injected network fault.
type NetKind int

const (
	// NetDrop refuses the connection: the request never reaches the server.
	NetDrop NetKind = iota
	// NetDelay stalls the request before sending it.
	NetDelay
	// NetReset sends the request but loses the response (connection reset):
	// server-side effects happen, the client sees a transport error.
	NetReset
	// NetTrunc truncates the response body mid-stream.
	NetTrunc
	// Net5xx short-circuits the request with a 503 answer.
	Net5xx
)

func (k NetKind) String() string {
	switch k {
	case NetDrop:
		return "drop"
	case NetDelay:
		return "delay"
	case NetReset:
		return "reset"
	case NetTrunc:
		return "trunc"
	case Net5xx:
		return "5xx"
	default:
		return fmt.Sprintf("NetKind(%d)", int(k))
	}
}

// NetRule is one entry of a network fault schedule.
type NetRule struct {
	Kind  NetKind
	Prob  float64
	Delay time.Duration // stall length (NetDelay)
	// Start and End bound the rule to a window of request ordinals
	// [Start, End); End 0 means open-ended.
	Start, End uint64
}

// active reports whether the rule applies to request ordinal n.
func (r NetRule) active(n uint64) bool {
	return n >= r.Start && (r.End == 0 || n < r.End)
}

// NetCounters tallies the injected decisions, for reporting and tests.
type NetCounters struct {
	Requests  int64 // requests that passed through the round tripper
	Drops     int64 // connections refused
	Delays    int64 // requests stalled
	Resets    int64 // responses lost after delivery
	Truncated int64 // response bodies cut short
	Answered  int64 // synthetic 5xx answers
}

// NetSchedule is a seeded network fault schedule.
type NetSchedule struct {
	Seed  uint64
	Rules []NetRule
}

// hash01 maps (seed, inputs) to a uniform variate in [0, 1).
func (s *NetSchedule) hash01(vals ...uint64) float64 {
	h := s.Seed ^ 0x9e3779b97f4a7c15
	for _, v := range vals {
		h = mix(h ^ v)
	}
	return float64(h>>11) / float64(1<<53)
}

// ParseNet builds a network schedule from a spec string (see the grammar
// above) and a seed.
func ParseNet(spec string, seed uint64) (*NetSchedule, error) {
	s := &NetSchedule{Seed: seed}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseNetRule(part)
		if err != nil {
			return nil, fmt.Errorf("fault: net rule %q: %w", part, err)
		}
		s.Rules = append(s.Rules, r)
	}
	if len(s.Rules) == 0 {
		return nil, fmt.Errorf("fault: empty net schedule %q", spec)
	}
	return s, nil
}

func parseNetRule(text string) (NetRule, error) {
	body, window, hasWindow := strings.Cut(text, "@")
	fields := strings.Split(body, ":")
	var r NetRule
	switch fields[0] {
	case "drop", "reset", "trunc", "5xx":
		if len(fields) != 2 {
			return r, fmt.Errorf("want %s:<prob>", fields[0])
		}
		p, err := parseProb(fields[1])
		if err != nil {
			return r, err
		}
		r.Prob = p
		switch fields[0] {
		case "drop":
			r.Kind = NetDrop
		case "reset":
			r.Kind = NetReset
		case "trunc":
			r.Kind = NetTrunc
		case "5xx":
			r.Kind = Net5xx
		}
	case "delay":
		if len(fields) != 3 {
			return r, fmt.Errorf("want delay:<prob>:<duration>")
		}
		p, err := parseProb(fields[1])
		if err != nil {
			return r, err
		}
		d, err := time.ParseDuration(fields[2])
		if err != nil || d <= 0 {
			return r, fmt.Errorf("bad delay %q", fields[2])
		}
		r.Kind, r.Prob, r.Delay = NetDelay, p, d
	default:
		return r, fmt.Errorf("unknown net fault kind %q", fields[0])
	}
	if hasWindow {
		start, end, err := parseNetWindow(window)
		if err != nil {
			return r, err
		}
		r.Start, r.End = start, end
		if end != 0 && end <= start {
			return r, fmt.Errorf("empty window")
		}
	}
	return r, nil
}

// parseNetWindow parses "a-b" / "a-" / "a" as a request-ordinal window.
func parseNetWindow(text string) (uint64, uint64, error) {
	startText, endText, hasEnd := strings.Cut(text, "-")
	start, err := strconv.ParseUint(startText, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad window start %q", startText)
	}
	if !hasEnd || endText == "" {
		return start, 0, nil
	}
	end, err := strconv.ParseUint(endText, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad window end %q", endText)
	}
	return start, end, nil
}

// A RoundTripper injects a NetSchedule into an HTTP client. Decisions key
// on the round tripper's own request ordinal (0, 1, 2, ...), so the fault
// pattern a client observes depends only on the seed and how many
// requests it has made — not on timing. Each injected client should own
// its RoundTripper: sharing one across clients would interleave their
// ordinal streams nondeterministically.
type RoundTripper struct {
	sched *NetSchedule
	base  http.RoundTripper
	seq   atomic.Uint64

	mu       sync.Mutex
	counters NetCounters
}

// NewRoundTripper wraps base (nil: http.DefaultTransport) with the
// schedule's faults.
func NewRoundTripper(sched *NetSchedule, base http.RoundTripper) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &RoundTripper{sched: sched, base: base}
}

// Counters returns a snapshot of the injected-decision tallies.
func (t *RoundTripper) Counters() NetCounters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters
}

func (t *RoundTripper) count(f func(*NetCounters)) {
	t.mu.Lock()
	f(&t.counters)
	t.mu.Unlock()
}

// RoundTrip implements http.RoundTripper. Rules are evaluated in schedule
// order: every matching delay stalls the request (stalls accumulate), and
// the first matching fate — drop, reset, trunc, 5xx — decides what
// happens to it.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.seq.Add(1) - 1
	t.count(func(c *NetCounters) { c.Requests++ })

	var delay time.Duration
	fate := NetKind(-1)
	for i, r := range t.sched.Rules {
		if !r.active(n) || t.sched.hash01(uint64(i), n) >= r.Prob {
			continue
		}
		if r.Kind == NetDelay {
			delay += r.Delay
			continue
		}
		if fate < 0 {
			fate = r.Kind
		}
	}

	if delay > 0 {
		t.count(func(c *NetCounters) { c.Delays++ })
		if err := sleepCtx(req.Context(), delay); err != nil {
			return nil, err
		}
	}

	switch fate {
	case NetDrop:
		t.count(func(c *NetCounters) { c.Drops++ })
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	case Net5xx:
		t.count(func(c *NetCounters) { c.Answered++ })
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:  http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:    io.NopCloser(strings.NewReader("fault: injected 503\n")),
			Request: req,
		}, nil
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch fate {
	case NetReset:
		// The request reached the server — its side effects are real —
		// but the answer is lost on the way back.
		t.count(func(c *NetCounters) { c.Resets++ })
		resp.Body.Close()
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	case NetTrunc:
		t.count(func(c *NetCounters) { c.Truncated++ })
		resp.Body = &truncBody{rc: resp.Body, remaining: truncAfterBytes}
		resp.ContentLength = -1
	}
	return resp, nil
}

// truncAfterBytes is where a truncated response body cuts off: enough to
// look like a real partial transfer, short enough to damage any artifact.
const truncAfterBytes = 64

// truncBody yields the first remaining bytes of rc, then fails with
// io.ErrUnexpectedEOF — a cut connection mid-body.
type truncBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *truncBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF {
		return n, err
	}
	if b.remaining <= 0 {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncBody) Close() error { return b.rc.Close() }

// sleepCtx waits d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
