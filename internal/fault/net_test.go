package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func TestParseNetGrammar(t *testing.T) {
	s, err := ParseNet("drop:0.2;delay:0.5:20ms;reset:0.1;trunc:0.1;5xx:0.25;drop:1@3-7", 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 6 || s.Seed != 42 {
		t.Fatalf("schedule = %+v", s)
	}
	want := []NetRule{
		{Kind: NetDrop, Prob: 0.2},
		{Kind: NetDelay, Prob: 0.5, Delay: 20 * time.Millisecond},
		{Kind: NetReset, Prob: 0.1},
		{Kind: NetTrunc, Prob: 0.1},
		{Kind: Net5xx, Prob: 0.25},
		{Kind: NetDrop, Prob: 1, Start: 3, End: 7},
	}
	for i, r := range s.Rules {
		if r != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
	// Open-ended and single-ordinal windows.
	s, err = ParseNet("reset:1@5-;trunc:1@9", 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rules[0].Start != 5 || s.Rules[0].End != 0 || s.Rules[1].Start != 9 {
		t.Fatalf("windows = %+v", s.Rules)
	}

	for _, bad := range []string{
		"", "wobble:0.5", "drop:1.5", "drop:x", "delay:0.5", "delay:0.5:-3ms",
		"delay:0.5:fast", "drop:1@7-3", "drop:1@b-c", "drop",
	} {
		if _, err := ParseNet(bad, 1); err == nil {
			t.Errorf("ParseNet(%q) accepted", bad)
		}
	}
}

// TestRoundTripperIsDeterministic: two round trippers with the same
// schedule make identical decisions for the same request ordinals,
// regardless of wall time.
func TestRoundTripperIsDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	outcomes := func() []string {
		sched, err := ParseNet("drop:0.3;5xx:0.3", 7)
		if err != nil {
			t.Fatal(err)
		}
		rt := NewRoundTripper(sched, nil)
		cl := &http.Client{Transport: rt}
		var out []string
		for i := 0; i < 40; i++ {
			resp, err := cl.Get(srv.URL)
			switch {
			case err != nil:
				out = append(out, "drop")
			case resp.StatusCode == http.StatusServiceUnavailable:
				resp.Body.Close()
				out = append(out, "5xx")
			default:
				resp.Body.Close()
				out = append(out, "ok")
			}
		}
		return out
	}
	a, b := outcomes(), outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: %q vs %q — decisions depend on more than the ordinal", i, a[i], b[i])
		}
	}
	// The schedule must actually do something at these probabilities.
	joined := strings.Join(a, ",")
	if !strings.Contains(joined, "drop") || !strings.Contains(joined, "5xx") || !strings.Contains(joined, "ok") {
		t.Fatalf("outcome mix too uniform: %s", joined)
	}
}

// TestDropWindowNeverReachesServer: a certain drop inside its ordinal
// window refuses the connection client-side; outside the window requests
// pass untouched.
func TestDropWindowNeverReachesServer(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	sched, err := ParseNet("drop:1@0-2", 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRoundTripper(sched, nil)
	cl := &http.Client{Transport: rt}
	for i := 0; i < 2; i++ {
		if _, err := cl.Get(srv.URL); err == nil {
			t.Fatalf("request %d inside the drop window succeeded", i)
		} else if !errors.Is(err, syscall.ECONNREFUSED) {
			t.Fatalf("request %d: %v, want ECONNREFUSED", i, err)
		}
	}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("request past the window: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", hits.Load())
	}
	c := rt.Counters()
	if c.Requests != 3 || c.Drops != 2 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestResetDeliversSideEffectsThenLosesAnswer pins the semantics the
// idempotent-completion machinery exists for: a reset request reaches
// the server — its side effects land — but the client sees ECONNRESET.
func TestResetDeliversSideEffectsThenLosesAnswer(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	sched, err := ParseNet("reset:1@0-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := &http.Client{Transport: NewRoundTripper(sched, nil)}
	if _, err := cl.Get(srv.URL); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("reset request: %v, want ECONNRESET", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests: a reset must deliver the request first", hits.Load())
	}
}

// TestTruncCutsBodyMidStream: a truncated response delivers headers and
// a prefix of the body, then fails with io.ErrUnexpectedEOF.
func TestTruncCutsBodyMidStream(t *testing.T) {
	body := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer srv.Close()

	sched, err := ParseNet("trunc:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := &http.Client{Transport: NewRoundTripper(sched, nil)}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read error = %v, want unexpected EOF", err)
	}
	if len(data) == 0 || len(data) >= len(body) {
		t.Fatalf("read %d bytes of %d; truncation must cut mid-body", len(data), len(body))
	}
}

// TestDelayStallsThenSucceeds: delays accumulate without changing the
// request's fate.
func TestDelayStallsThenSucceeds(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	sched, err := ParseNet("delay:1:1ms;delay:1:1ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRoundTripper(sched, nil)
	cl := &http.Client{Transport: rt}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if c := rt.Counters(); c.Delays != 1 || c.Requests != 1 {
		t.Fatalf("counters = %+v", c)
	}
}
