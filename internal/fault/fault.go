// Package fault provides the deterministic, seedable fault schedule
// injected into the mesh simulator: transient and permanent link outages,
// in-transit message drops, corrupted-length deliveries, and slow-link
// degradation. A Schedule implements mesh.Injector; every probabilistic
// decision is a pure hash of (seed, message, attempt, hop), never a shared
// random stream, so two runs with the same seed produce byte-identical
// delivery logs regardless of event interleaving.
//
// Schedules are written as compact specs, e.g.
//
//	down:1->2@1ms-2ms         transient outage of link 1->2 during [1ms,2ms)
//	down:1->2@1ms             permanent failure of link 1->2 from 1ms on
//	down:1<->2@1ms            both directions
//	drop:0.01                 drop each hop traversal with probability 0.01
//	drop:0.05@0-500us         only during the first 500us
//	corrupt:0.001             corrupt a delivery with probability 0.001
//	slow:3->4:x4@0-2ms        link 3->4 runs 4x slower during [0,2ms)
//
// joined with ';', e.g. "drop:0.01;down:5->6@1ms".
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// Kind is the class of an injected fault.
type Kind int

const (
	// KindDown takes a link out of service for a window (or forever).
	KindDown Kind = iota
	// KindDrop loses individual hop traversals with a probability.
	KindDrop
	// KindCorrupt delivers a message length-corrupted with a probability.
	KindCorrupt
	// KindSlow multiplies a link's per-hop time by a factor.
	KindSlow
)

func (k Kind) String() string {
	switch k {
	case KindDown:
		return "down"
	case KindDrop:
		return "drop"
	case KindCorrupt:
		return "corrupt"
	case KindSlow:
		return "slow"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Rule is one entry of a fault schedule.
type Rule struct {
	Kind     Kind
	From, To int  // link endpoints; -1 for any (drop/corrupt)
	Both     bool // also apply to the reverse direction
	Prob     float64
	Factor   int      // slow-down multiplier (KindSlow)
	Start    sim.Time // window start (inclusive)
	End      sim.Time // window end (exclusive); 0 = open-ended
}

// active reports whether the rule applies at time now.
func (r Rule) active(now sim.Time) bool {
	return now >= r.Start && (r.End == 0 || now < r.End)
}

// matches reports whether the rule covers link from->to.
func (r Rule) matches(from, to int) bool {
	if r.From < 0 {
		return true
	}
	return (r.From == from && r.To == to) || (r.Both && r.From == to && r.To == from)
}

// Counters tallies the injector's probabilistic decisions, for reporting.
// Outage and reroute effects are visible in the delivery log's fault flags
// instead: LinkFault is also consulted during route planning, so counting
// queries here would overstate them.
type Counters struct {
	Drops       int64 // traversals lost by drop rules
	Corruptions int64 // deliveries corrupted
}

// Schedule is a seeded fault schedule; it implements mesh.Injector.
type Schedule struct {
	Seed  uint64
	Rules []Rule

	counters Counters
}

// New returns an empty schedule with the given seed.
func New(seed uint64) *Schedule {
	return &Schedule{Seed: seed}
}

// Add appends a rule and returns the schedule for chaining.
func (s *Schedule) Add(r Rule) *Schedule {
	s.Rules = append(s.Rules, r)
	return s
}

// Counters returns a snapshot of the injector's decision tallies.
func (s *Schedule) Counters() Counters { return s.counters }

// mix is the splitmix64 finalizer: a high-quality bijective hash.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hash01 maps the inputs to a uniform variate in [0, 1), deterministically
// in (seed, inputs) only.
func (s *Schedule) hash01(vals ...uint64) float64 {
	h := s.Seed ^ 0x9e3779b97f4a7c15
	for _, v := range vals {
		h = mix(h ^ v)
	}
	return float64(h>>11) / float64(1<<53)
}

// LinkFault implements mesh.Injector.
func (s *Schedule) LinkFault(from, to int, now sim.Time) mesh.LinkFault {
	var f mesh.LinkFault
	for _, r := range s.Rules {
		if !r.matches(from, to) || !r.active(now) {
			continue
		}
		switch r.Kind {
		case KindDown:
			f.Down = true
			if r.End == 0 {
				f.Permanent = true
			}
		case KindSlow:
			if r.Factor > f.SlowFactor {
				f.SlowFactor = r.Factor
			}
		}
	}
	return f
}

// Drop implements mesh.Injector: each (message, attempt, hop) traversal is
// an independent, hash-derived Bernoulli trial per drop rule.
func (s *Schedule) Drop(msgID int64, attempt, hop, from, to int, now sim.Time) bool {
	for i, r := range s.Rules {
		if r.Kind != KindDrop || !r.matches(from, to) || !r.active(now) {
			continue
		}
		if s.hash01(uint64(i), uint64(msgID), uint64(attempt), uint64(hop)) < r.Prob {
			s.counters.Drops++
			return true
		}
	}
	return false
}

// Corrupt implements mesh.Injector: one hash-derived trial per (message,
// attempt) and corrupt rule.
func (s *Schedule) Corrupt(msgID int64, attempt int, now sim.Time) bool {
	for i, r := range s.Rules {
		if r.Kind != KindCorrupt || !r.active(now) {
			continue
		}
		if s.hash01(^uint64(i), uint64(msgID), uint64(attempt)) < r.Prob {
			s.counters.Corruptions++
			return true
		}
	}
	return false
}

var _ mesh.Injector = (*Schedule)(nil)

// Parse builds a schedule from a spec string (see the package comment for
// the grammar) and a seed.
func Parse(spec string, seed uint64) (*Schedule, error) {
	s := New(seed)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, fmt.Errorf("fault: rule %q: %w", part, err)
		}
		s.Add(r)
	}
	if len(s.Rules) == 0 {
		return nil, fmt.Errorf("fault: empty schedule %q", spec)
	}
	return s, nil
}

func parseRule(text string) (Rule, error) {
	body, window, hasWindow := strings.Cut(text, "@")
	fields := strings.Split(body, ":")
	r := Rule{From: -1, To: -1}
	switch fields[0] {
	case "down":
		if len(fields) != 2 {
			return r, fmt.Errorf("want down:<link>")
		}
		if err := parseLink(fields[1], &r); err != nil {
			return r, err
		}
		r.Kind = KindDown
	case "drop", "corrupt":
		if len(fields) != 2 {
			return r, fmt.Errorf("want %s:<prob>", fields[0])
		}
		p, err := parseProb(fields[1])
		if err != nil {
			return r, err
		}
		r.Prob = p
		r.Kind = KindDrop
		if fields[0] == "corrupt" {
			r.Kind = KindCorrupt
		}
	case "slow":
		if len(fields) != 3 {
			return r, fmt.Errorf("want slow:<link>:x<factor>")
		}
		if err := parseLink(fields[1], &r); err != nil {
			return r, err
		}
		factor, err := strconv.Atoi(strings.TrimPrefix(fields[2], "x"))
		if err != nil || factor < 2 {
			return r, fmt.Errorf("bad slow factor %q", fields[2])
		}
		r.Kind = KindSlow
		r.Factor = factor
	default:
		return r, fmt.Errorf("unknown fault kind %q", fields[0])
	}
	if hasWindow {
		start, end, err := parseWindow(window)
		if err != nil {
			return r, err
		}
		r.Start, r.End = start, end
	}
	if r.Kind == KindDown && r.End != 0 && r.End <= r.Start {
		return r, fmt.Errorf("empty window")
	}
	return r, nil
}

func parseLink(text string, r *Rule) error {
	sep := "->"
	if strings.Contains(text, "<->") {
		sep = "<->"
		r.Both = true
	}
	from, to, ok := strings.Cut(text, sep)
	if !ok {
		return fmt.Errorf("bad link %q (want A->B or A<->B)", text)
	}
	a, err1 := strconv.Atoi(from)
	b, err2 := strconv.Atoi(to)
	if err1 != nil || err2 != nil || a < 0 || b < 0 || a == b {
		return fmt.Errorf("bad link endpoints %q", text)
	}
	r.From, r.To = a, b
	return nil
}

func parseProb(text string) (float64, error) {
	text = strings.TrimPrefix(text, "p=")
	p, err := strconv.ParseFloat(text, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("bad probability %q", text)
	}
	return p, nil
}

func parseWindow(text string) (sim.Time, sim.Time, error) {
	startText, endText, hasEnd := strings.Cut(text, "-")
	start, err := parseDuration(startText)
	if err != nil {
		return 0, 0, err
	}
	if !hasEnd || endText == "" {
		return sim.Time(start), 0, nil
	}
	end, err := parseDuration(endText)
	if err != nil {
		return 0, 0, err
	}
	return sim.Time(start), sim.Time(end), nil
}

// parseDuration parses a simulated duration with an optional ns/us/ms/s
// suffix; a bare number is nanoseconds.
func parseDuration(text string) (sim.Duration, error) {
	unit := sim.Duration(1)
	num := text
	for _, suffix := range []struct {
		text string
		mul  sim.Duration
	}{
		{"ns", sim.Nanosecond},
		{"us", sim.Microsecond},
		{"ms", sim.Millisecond},
		{"s", sim.Second},
	} {
		if strings.HasSuffix(text, suffix.text) {
			unit = suffix.mul
			num = strings.TrimSuffix(text, suffix.text)
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad duration %q", text)
	}
	return sim.Duration(v * float64(unit)), nil
}
