package fault

import (
	"testing"

	"commchar/internal/sim"
)

func TestParseGrammar(t *testing.T) {
	s, err := Parse("down:1->2@1ms-2ms;drop:0.01;corrupt:p=0.001;slow:3->4:x4@0-2ms;down:5<->6@500us", 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 5 {
		t.Fatalf("got %d rules", len(s.Rules))
	}
	r := s.Rules[0]
	if r.Kind != KindDown || r.From != 1 || r.To != 2 || r.Start != 1_000_000 || r.End != 2_000_000 {
		t.Errorf("down rule wrong: %+v", r)
	}
	if s.Rules[1].Kind != KindDrop || s.Rules[1].Prob != 0.01 || s.Rules[1].From != -1 {
		t.Errorf("drop rule wrong: %+v", s.Rules[1])
	}
	if s.Rules[2].Kind != KindCorrupt || s.Rules[2].Prob != 0.001 {
		t.Errorf("corrupt rule wrong: %+v", s.Rules[2])
	}
	if s.Rules[3].Kind != KindSlow || s.Rules[3].Factor != 4 || s.Rules[3].End != 2_000_000 {
		t.Errorf("slow rule wrong: %+v", s.Rules[3])
	}
	last := s.Rules[4]
	if !last.Both || last.Start != 500_000 || last.End != 0 {
		t.Errorf("bidirectional permanent rule wrong: %+v", last)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "bogus:1", "down:1", "down:1->1", "drop:2.0", "drop:x",
		"slow:1->2:x1", "slow:1->2", "down:1->2@2ms-1ms", "down:a->b",
		"drop:0.5@zzz",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestLinkFaultWindows(t *testing.T) {
	s, err := Parse("down:1->2@1ms-2ms;slow:1->2:x3@0-1ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Before the outage window: slow only.
	f := s.LinkFault(1, 2, 500_000)
	if f.Down || f.SlowFactor != 3 {
		t.Errorf("t=0.5ms: %+v", f)
	}
	// Inside the outage window: transient down, slow expired.
	f = s.LinkFault(1, 2, 1_500_000)
	if !f.Down || f.Permanent || f.SlowFactor != 0 {
		t.Errorf("t=1.5ms: %+v", f)
	}
	// After: clean.
	f = s.LinkFault(1, 2, 2_000_000)
	if f.Down || f.SlowFactor != 0 {
		t.Errorf("t=2ms: %+v", f)
	}
	// Other links unaffected.
	if f := s.LinkFault(2, 1, 1_500_000); f.Down {
		t.Errorf("reverse direction affected: %+v", f)
	}
}

func TestPermanentDown(t *testing.T) {
	s, _ := Parse("down:3<->4@1us", 1)
	f := s.LinkFault(3, 4, 2_000)
	if !f.Down || !f.Permanent {
		t.Errorf("forward: %+v", f)
	}
	f = s.LinkFault(4, 3, 2_000)
	if !f.Down || !f.Permanent {
		t.Errorf("reverse: %+v", f)
	}
	if f := s.LinkFault(3, 4, 500); f.Down {
		t.Errorf("before start: %+v", f)
	}
}

func TestDropDeterministicAndSeedSensitive(t *testing.T) {
	a, _ := Parse("drop:0.5", 99)
	b, _ := Parse("drop:0.5", 99)
	c, _ := Parse("drop:0.5", 100)
	same, diff := 0, 0
	for msg := int64(0); msg < 200; msg++ {
		da := a.Drop(msg, 0, 0, 1, 2, 0)
		if db := b.Drop(msg, 0, 0, 1, 2, 0); da != db {
			t.Fatalf("same seed diverged at msg %d", msg)
		}
		if dc := c.Drop(msg, 0, 0, 1, 2, 0); da == dc {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds never diverged")
	}
	// At p=0.5 roughly half the 200 trials should drop.
	drops := a.Counters().Drops
	if drops < 60 || drops > 140 {
		t.Errorf("p=0.5 produced %d/200 drops", drops)
	}
}

func TestCorruptCounter(t *testing.T) {
	s, _ := Parse("corrupt:1.0", 5)
	if !s.Corrupt(1, 0, 0) || !s.Corrupt(2, 0, 0) {
		t.Fatal("p=1 did not corrupt")
	}
	if s.Counters().Corruptions != 2 {
		t.Fatalf("counter: %+v", s.Counters())
	}
}

func TestDurationSuffixes(t *testing.T) {
	for _, c := range []struct {
		text string
		want sim.Duration
	}{
		{"250", 250}, {"1ns", 1}, {"2us", 2_000}, {"3ms", 3_000_000}, {"1s", 1_000_000_000},
		{"0.5ms", 500_000},
	} {
		got, err := parseDuration(c.text)
		if err != nil || got != c.want {
			t.Errorf("parseDuration(%q) = %v, %v; want %v", c.text, got, err, c.want)
		}
	}
}
