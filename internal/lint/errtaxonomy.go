package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"
)

// taxonomyPackages are the packages whose errors cross the pipeline
// boundary: resilience.Classify walks their error chains with
// errors.Is/errors.As to decide retry-vs-permanent and degraded-vs-fail
// semantics, and the chaos tests assert on wrapped sentinel types. An
// opaque wrap (%v, %s, err.Error()) severs the chain and silently turns
// a transient disk-cache flake into a permanent failure.
var taxonomyPackages = []string{
	"internal/pipeline",
	"internal/core",
	"internal/trace",
	// The taxonomy layer itself and the sweep driver sit on the same
	// boundary: a stringified wrap inside either defeats Classify just
	// as surely (retry.Do's "last attempt: %v" was the live instance).
	"internal/resilience",
	"internal/experiments",
	// The distributed layer ships errors across a process boundary and
	// re-classifies them on the far side (FailRequest.Transient comes
	// from Classify); a stringified wrap on either side breaks failover.
	"internal/dist",
}

// ErrTaxonomyAnalyzer enforces the PR 3 error taxonomy at the pipeline
// boundary:
//
//   - fmt.Errorf with an error-typed argument must use %w so the cause
//     stays reachable by errors.Is/As (and thereby by
//     resilience.Classify);
//   - err.Error() must not be passed to fmt.Errorf or errors.New: it
//     flattens the chain to a string before anyone can classify it.
var ErrTaxonomyAnalyzer = &Analyzer{
	Name: "errtaxonomy",
	Doc: "checks that errors crossing the pipeline boundary are wrapped with %w " +
		"(or classified via internal/resilience), never stringified",
	Run: runErrTaxonomy,
}

func runErrTaxonomy(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), taxonomyPackages...) {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := callee(info, call)
			switch {
			case isPkgFunc(obj, "fmt", "Errorf"):
				checkErrorf(pass, call)
			case isPkgFunc(obj, "errors", "New"):
				checkStringifiedArgs(pass, call, "errors.New")
			}
			return true
		})
	}
	return nil
}

// checkErrorf flags fmt.Errorf calls that format an error value with a
// stringifying verb instead of wrapping it.
func checkErrorf(pass *Pass, call *ast.CallExpr) {
	checkStringifiedArgs(pass, call, "fmt.Errorf")
	if len(call.Args) < 2 {
		return
	}
	format, known := constantString(pass.TypesInfo, call.Args[0])
	if !known || strings.Contains(format, "%w") {
		// Either already wrapping, or the format is built dynamically
		// (the err.Error() check above still covers the common evasion).
		return
	}
	verbs := fmtVerbs(format)
	lit, isLit := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	for i, arg := range call.Args[1:] {
		if !implementsError(pass.TypesInfo.TypeOf(arg)) {
			continue
		}
		d := Diagnostic{Pos: arg.Pos(), Rule: pass.Analyzer.Name,
			Message: "error value formatted with %v/%s in fmt.Errorf; " +
				"use %w so errors.Is/As and resilience.Classify can still see the cause"}
		// The rewrite is only safe when verbs map one-to-one onto the
		// arguments (no *, no explicit indexes) and this argument's verb
		// is a bare %v or %s.
		if isLit && len(verbs) == len(call.Args)-1 && i < len(verbs) {
			if v := verbs[i]; v.spec == "%v" || v.spec == "%s" {
				fixed := format[:v.start] + "%w" + format[v.start+len(v.spec):]
				d.Fixes = []SuggestedFix{{
					Message: "wrap with %w instead of " + v.spec,
					Edits:   []TextEdit{{Pos: lit.Pos(), End: lit.End(), NewText: strconv.Quote(fixed)}},
				}}
			}
		}
		pass.Report(d)
	}
}

// fmtVerb is one conversion specification in a format string: spec is
// the full "%…v" text and start its byte offset in the unquoted format.
type fmtVerb struct {
	start int
	spec  string
}

// fmtVerbs scans format for conversion specs in argument order. It
// returns nil when the mapping from verbs to arguments is not
// one-to-one (a * width/precision or an explicit [n] index), so callers
// must treat nil as "unknown".
func fmtVerbs(format string) []fmtVerb {
	var verbs []fmtVerb
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0.0123456789", rune(format[j])) {
			j++
		}
		if j >= len(format) {
			break
		}
		switch format[j] {
		case '%':
			i = j + 1
			continue
		case '*', '[':
			return nil
		}
		verbs = append(verbs, fmtVerb{start: i, spec: format[i : j+1]})
		i = j + 1
	}
	return verbs
}

// checkStringifiedArgs flags X.Error() calls used as arguments to the
// named error constructor.
func checkStringifiedArgs(pass *Pass, call *ast.CallExpr, constructor string) {
	info := pass.TypesInfo
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok || len(inner.Args) != 0 {
				return true
			}
			sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Error" {
				return true
			}
			if implementsError(info.TypeOf(sel.X)) {
				pass.Reportf(inner.Pos(), "err.Error() inside %s flattens the error chain to a string; "+
					"pass the error itself (wrap with %%w) so the resilience taxonomy can classify it",
					constructor)
			}
			return true
		})
	}
}

// constantString evaluates expr to a compile-time string if possible.
func constantString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
