package lint

import (
	"go/ast"
	"go/types"
)

// ctxEntryPackages are the packages whose exported entry points sit on
// the run-pipeline path: cancellation (SIGINT, -spec-timeout deadlines)
// must be able to reach any replay loop or filesystem touch they start.
var ctxEntryPackages = []string{
	"internal/pipeline",
	"internal/core",
	"internal/sim",
	// The distributed layer's poll and heartbeat loops run until a remote
	// process says stop; an uncancellable one pins a worker forever.
	"internal/dist",
	// Collective analysis walks whole delivery logs; its exported entry
	// points sit on the characterization path and must stay cancellable
	// if they ever grow condition-only loops or filesystem I/O.
	"internal/coll",
}

// ioFuncs are the os entry points whose latency is unbounded from the
// caller's point of view (filesystem and process control).
var ioFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
}

// CtxflowAnalyzer enforces the PR 3 cancellation contract:
//
//   - an exported function in the pipeline/core/sim entry packages that
//     contains a condition-only loop (`for {` / `for cond {` — the
//     replay-loop shape that runs until the simulation decides to stop)
//     or calls filesystem I/O must accept a context.Context parameter,
//     so a hung replay stays killable;
//   - library packages must not mint fresh root contexts with
//     context.Background()/context.TODO(): a fresh root silently
//     detaches the callee from the caller's cancellation, which is how
//     ctx plumbing rots. Deliberate context-free compatibility shims
//     carry a //lint:allow ctxflow justification.
var CtxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "checks that cancellation can reach every replay loop and that " +
		"library code never detaches from the caller's context",
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) error {
	if inScope(pass.Pkg.Path(), ctxEntryPackages...) {
		for _, fn := range funcsIn(pass.Files) {
			checkExportedTakesCtx(pass, fn)
		}
	}
	if isInternal(pass.Pkg.Path()) && !inScope(pass.Pkg.Path(), "internal/cli") {
		checkNoFreshRoots(pass)
	}
	return nil
}

// checkExportedTakesCtx flags exported entry points that loop or do I/O
// without a context parameter.
func checkExportedTakesCtx(pass *Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || !receiverExported(fn) {
		return
	}
	if hasCtxParam(pass.TypesInfo, fn) {
		return
	}
	if what := unboundedWork(pass.TypesInfo, fn.Body); what != "" {
		pass.Reportf(fn.Name.Pos(), "exported %s contains %s but takes no context.Context; "+
			"cancellation cannot reach it — add a ctx parameter (see Engine.RunContext)",
			fn.Name.Name, what)
	}
}

// receiverExported reports whether fn is a plain function or a method
// on an exported named type; methods on unexported types are not API.
func receiverExported(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// hasCtxParam reports whether any parameter of fn has type
// context.Context.
func hasCtxParam(info *types.Info, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// unboundedWork describes the first condition-only loop or I/O call in
// body, or "" when the function's work is bounded by its inputs.
func unboundedWork(info *types.Info, body *ast.BlockStmt) string {
	what := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure runs on its owner's schedule
		case *ast.ForStmt:
			// Only condition-only loops: three-clause counting loops
			// and range loops are bounded by their inputs.
			if n.Init == nil && n.Post == nil {
				what = "a condition-only loop"
			}
		case *ast.CallExpr:
			if fn, ok := callee(info, n).(*types.Func); ok && fn.Pkg() != nil &&
				fn.Pkg().Path() == "os" && ioFuncs[fn.Name()] {
				what = "filesystem I/O (os." + fn.Name() + ")"
			}
		}
		return true
	})
	return what
}

// checkNoFreshRoots flags context.Background()/context.TODO() calls.
func checkNoFreshRoots(pass *Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := callee(info, call)
			if isPkgFunc(obj, "context", "Background") || isPkgFunc(obj, "context", "TODO") {
				pass.Reportf(call.Pos(), "context.%s mints a fresh root in a library package, "+
					"detaching callees from the caller's cancellation; accept a ctx instead",
					obj.Name())
			}
			return true
		})
	}
}
