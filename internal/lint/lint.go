// Package lint is the repository's static-analysis suite: eight custom
// analyzers that machine-check the invariants the reproduction's
// correctness rests on, plus the plumbing to run them under
// `go vet -vettool` (see cmd/repolint).
//
// The analyzers encode conventions that were previously enforced only
// by review:
//
//   - determinism: byte-identical characterizations at -parallel=1 and
//     -parallel=N require that nothing observable depends on map
//     iteration order, wall-clock time, or an unseeded RNG.
//   - ctxflow: cancellation must reach every replay loop, so exported
//     pipeline/core/sim entry points that loop or do I/O must accept a
//     context.Context, and library code must not mint fresh roots with
//     context.Background()/context.TODO().
//   - errtaxonomy: errors crossing the pipeline boundary must stay
//     inspectable by errors.Is/As so the resilience retry taxonomy can
//     classify them; stringifying a cause defeats that.
//   - exitcode: the typed exit-code contract (0 ok / 1 fail / 2 usage /
//     3 degraded / 130 cancelled) lives in internal/cli; nothing else
//     may exit, log.Fatal, or panic across the pipeline boundary.
//   - hotpath: functions annotated //lint:hot (the sim cycle loop, the
//     mesh routing step) and everything they reach must not allocate:
//     no make/new/append growth, no fmt.Sprintf, no interface boxing.
//   - leakcheck: time.Ticker/Timer must be stopped, goroutines that
//     loop must have a cancellation path, and constructor-returned
//     handles (Close/Stop/Shutdown) must be released.
//   - lockorder: per-struct mutexes must be acquired in one consistent
//     order, and no lock may be held across a channel send or an HTTP
//     round-trip.
//   - obsconv: exported obs types must stay nil-receiver safe, and
//     metric names must be commchar_-prefixed snake_case with _total
//     counters and no dynamic-name cardinality.
//
// Analyzers export serialized per-object facts (AllocatesOnHotPath,
// UncancellableLoop, Handle, AcquiresLocks, Blocking, NilSafe) into the
// unit's vetx file, so a property proven in one package propagates to
// its importers instead of stopping at the import edge. Diagnostics may
// carry SuggestedFixes; `repolint -fix` applies them (see fix.go).
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic, facts)
// but is built on the standard library only, so the module keeps a zero
// third-party dependency footprint. Swapping an analyzer onto x/tools
// later is a mechanical change.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant checker. Its Run function inspects
// a package through the Pass and reports diagnostics; it does not
// mutate anything.
type Analyzer struct {
	// Name is the rule name used in diagnostics and in
	// //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// FactTypes declares the Fact implementations this analyzer may
	// export; exporting an undeclared type is a programming error.
	FactTypes []Fact
	// Run inspects pass and reports diagnostics via pass.Report.
	Run func(pass *Pass) error
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees, excluding _test.go files:
	// test code may freely use wall clocks, panics, and fresh contexts.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// facts backs ExportObjectFact/ImportObjectFact; nil disables the
	// facts protocol (facts silently vanish, imports find nothing).
	facts *FactStore
}

// Reportf reports a diagnostic at pos under the pass's rule name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Rule: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ReportFix reports a diagnostic that carries one suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.Report(Diagnostic{
		Pos: pos, Rule: p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
		Fixes:   []SuggestedFix{fix},
	})
}

// A Diagnostic is one reported violation. Fixes, when present, are
// alternative machine-applicable resolutions; `repolint -fix` applies
// the first one.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
	Fixes   []SuggestedFix
}

// Package is a loaded, type-checked package ready to lint.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzers returns the full suite in a fixed order. The fact-exporting
// analyzers run after the factless four, and within one package each
// analyzer sees the facts exported by the analyzers before it.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		CtxflowAnalyzer,
		ErrTaxonomyAnalyzer,
		ExitCodeAnalyzer,
		HotPathAnalyzer,
		LeakCheckAnalyzer,
		LockOrderAnalyzer,
		ObsConvAnalyzer,
	}
}

// AnalyzerNames returns the rule names accepted by //lint:allow.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run runs the given analyzers over pkg, applies //lint:allow
// suppression, and returns the surviving diagnostics (including
// diagnostics about the allow comments themselves) sorted by position.
// Facts are kept in a throwaway store: use RunWithFacts to thread facts
// across packages.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithFacts(pkg, analyzers, NewFactStore())
}

// RunWithFacts is Run with an externally owned fact store: the caller
// seeds it with the facts of pkg's dependencies (decoded from their
// vetx files, or computed by analyzing the dependencies first), and
// after the call it additionally holds the facts the analyzers exported
// for pkg itself.
func RunWithFacts(pkg *Package, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
			facts:     store,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Types.Path(), err)
		}
	}
	diags = applyAllows(pkg, analyzers, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Rule != diags[j].Rule {
			return diags[i].Rule < diags[j].Rule
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// inScope reports whether a package path denotes one of the named
// repository packages, with or without the module prefix, so the same
// scope tables work under `go vet` (commchar/internal/sim) and under
// the test fixtures (testdata GOPATH layout with identical paths).
func inScope(pkgPath string, pkgs ...string) bool {
	for _, p := range pkgs {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
	}
	return false
}

// isInternal reports whether the package is one of the repository's
// internal library packages (as opposed to a main package or an
// example).
func isInternal(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "internal/") || strings.Contains(pkgPath, "/internal/")
}

// callee resolves the object called by call, or nil.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function
// pkgPath.name (methods do not match).
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return name == "" || fn.Name() == name
}

// funcsIn yields every function or method declaration with a body.
func funcsIn(files []*ast.File) []*ast.FuncDecl {
	var fns []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}
	return fns
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t) satisfies the error
// interface. Untyped and basic types never do.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}
