package lint

import (
	"strings"
	"testing"
)

// TestAllowMetaDiagnostics covers the allow problems whose fixtures
// cannot carry inline `// want` comments: a want expectation appended
// to an allow comment would become its justification, changing what is
// being tested. So this test asserts on Run's raw diagnostics instead.
func TestAllowMetaDiagnostics(t *testing.T) {
	pkg, err := fixtureLoader.Load("allowmeta/internal/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{ErrTaxonomyAnalyzer})
	if err != nil {
		t.Fatal(err)
	}

	var msgs []string
	for _, d := range diags {
		if d.Rule != AllowRule {
			t.Errorf("unexpected %s diagnostic: %s (suppression must survive a missing justification)",
				d.Rule, d.Message)
			continue
		}
		msgs = append(msgs, d.Message)
	}
	if len(msgs) != 2 {
		t.Fatalf("got %d allow diagnostics %v, want 2", len(msgs), msgs)
	}
	if !strings.Contains(msgs[0], "malformed //lint:allow") {
		t.Errorf("first diagnostic %q, want the malformed bare marker", msgs[0])
	}
	if !strings.Contains(msgs[1], "needs a justification") {
		t.Errorf("second diagnostic %q, want the missing-justification report", msgs[1])
	}
}

// TestAllowSuppressesExactlyTheNamedRule runs two analyzers over the
// allowfix fixture at once and checks that the errtaxonomy allows do
// not leak onto other rules' diagnostics for the same lines.
func TestAllowSuppressesExactlyTheNamedRule(t *testing.T) {
	pkg, err := fixtureLoader.Load("allowfix/internal/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	// ctxflow now runs too: the fixture's `//lint:allow ctxflow` with no
	// ctxflow diagnostic nearby must flip from ignored to stale.
	diags, err := Run(pkg, []*Analyzer{ErrTaxonomyAnalyzer, CtxflowAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	staleCtxflow := false
	for _, d := range diags {
		if d.Rule == AllowRule && strings.Contains(d.Message, "stale //lint:allow ctxflow") {
			staleCtxflow = true
		}
	}
	if !staleCtxflow {
		t.Errorf("ctxflow ran but its unused allow was not reported stale; diagnostics: %v", diags)
	}
}
