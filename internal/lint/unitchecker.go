package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// vetConfig mirrors the JSON configuration file that `go vet
// -vettool=...` hands the tool for each package unit. The field set
// matches cmd/go/internal/work's vetConfig (and x/tools'
// unitchecker.Config); unknown fields are ignored so newer toolchains
// stay compatible.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// VetMain implements the vettool side of the `go vet -vettool`
// protocol for one invocation argument:
//
//	repolint -V=full      print a version/fingerprint line (build cache key)
//	repolint -flags       print the tool's flags as JSON (none)
//	repolint <unit>.cfg   analyze one package unit
//
// It returns the process exit code: 0 clean, 1 internal error, 2 when
// diagnostics were reported (matching x/tools' unitchecker).
func VetMain(stdout, stderr io.Writer, arg string) int {
	switch {
	case arg == "-V=full":
		fmt.Fprintf(stdout, "repolint version %s\n", toolFingerprint())
		return 0
	case arg == "-flags":
		fmt.Fprintln(stdout, "[]")
		return 0
	case strings.HasSuffix(arg, ".cfg"):
		return vetUnit(stderr, arg)
	}
	fmt.Fprintf(stderr, "repolint: unexpected vettool argument %q\n", arg)
	return 1
}

// toolFingerprint derives the tool identity line `go vet` uses as a
// cache key from the running executable's content, so rebuilding
// repolint invalidates cached vet results. The leading "lint-" keeps
// the token distinct from "devel", which cmd/go parses specially.
func toolFingerprint() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("lint-%x", h.Sum(nil)[:12])
			}
		}
	}
	return "lint-unknown"
}

// vetUnit analyzes the package unit described by the config file.
func vetUnit(stderr io.Writer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Dependencies are presented with VetxOnly set: they exist only so
	// fact-exporting analyzers can run. This suite exports no facts, so
	// the entire standard library and module dep graph is skipped.
	if cfg.VetxOnly {
		writeVetx(cfg.VetxOutput)
		return 0
	}

	pkg, err := loadUnit(&cfg)
	if err != nil {
		writeVetx(cfg.VetxOutput)
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "repolint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := Run(pkg, Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 1
	}
	writeVetx(cfg.VetxOutput)
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Rule, d.Message)
	}
	return 2
}

// loadUnit parses and type-checks the unit's non-test Go files,
// resolving imports through the compiler export data `go vet` lists in
// the config. Test files are excluded by policy (test code may panic,
// sleep, and mint contexts freely), which also means pure test
// variants ("p [p.test]" with only _test.go files) reduce to the
// already-analyzed base package or to nothing.
func loadUnit(cfg *vetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return &Package{Fset: fset, Types: types.NewPackage(cfg.ImportPath, "empty"), Info: newInfo()}, nil
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tcfg := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Sizes:    types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := newInfo()
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// newInfo allocates the types.Info maps the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// writeVetx records an (empty) facts file where the build system
// expects one, letting `go vet` cache the unit's clean result. The
// suite is factless, so there is nothing to serialize; errors are
// ignored because a missing facts file only costs cache hits.
func writeVetx(path string) {
	if path != "" {
		_ = os.WriteFile(path, nil, 0o666)
	}
}
