package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
)

// vetConfig mirrors the JSON configuration file that `go vet
// -vettool=...` hands the tool for each package unit. The field set
// matches cmd/go/internal/work's vetConfig (and x/tools'
// unitchecker.Config); unknown fields are ignored so newer toolchains
// stay compatible.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// VetMain implements the vettool side of the `go vet -vettool`
// protocol for one invocation:
//
//	repolint -V=full             print a version/fingerprint line (build cache key)
//	repolint -flags              print the tool's flags as JSON
//	repolint [-fix] <unit>.cfg   analyze one package unit, optionally applying fixes
//
// The -fix flag is declared via -flags, so `go vet -vettool=repolint
// -fix ./...` forwards it to every unit invocation. VetMain returns the
// process exit code: 0 clean (or every diagnostic fixed), 1 internal
// error, 2 when diagnostics were reported (matching x/tools'
// unitchecker).
func VetMain(stdout, stderr io.Writer, args []string) int {
	fix := false
	for _, arg := range args {
		switch {
		case arg == "-V=full":
			fmt.Fprintf(stdout, "repolint version %s\n", toolFingerprint())
			return 0
		case arg == "-flags":
			fmt.Fprintln(stdout, `[{"Name":"fix","Bool":true,"Usage":"apply suggested fixes and re-run gofmt"}]`)
			return 0
		case arg == "-fix" || arg == "-fix=true" || arg == "--fix":
			fix = true
		case arg == "-fix=false":
			fix = false
		case strings.HasSuffix(arg, ".cfg"):
			return vetUnit(stderr, arg, fix)
		default:
			fmt.Fprintf(stderr, "repolint: unexpected vettool argument %q\n", arg)
			return 1
		}
	}
	fmt.Fprintf(stderr, "repolint: missing unit config argument\n")
	return 1
}

// toolFingerprint derives the tool identity line `go vet` uses as a
// cache key from the running executable's content, so rebuilding
// repolint invalidates cached vet results. The leading "lint-" keeps
// the token distinct from "devel", which cmd/go parses specially.
func toolFingerprint() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("lint-%x", h.Sum(nil)[:12])
			}
		}
	}
	return "lint-unknown"
}

// factBearing reports whether the unit at importPath participates in
// the facts protocol. Only this module's packages export facts; the
// standard library and (hypothetical) external deps write empty vetx
// files and are never parsed, keeping `go vet ./...` fast.
func factBearing(importPath string) bool {
	return importPath == "commchar" || strings.HasPrefix(importPath, "commchar/")
}

// vetUnit analyzes the package unit described by the config file. When
// fix is set, suggested fixes are applied to the unit's source files
// in place (gofmt re-run included) and only unfixable diagnostics keep
// the exit status at 2.
func vetUnit(stderr io.Writer, cfgPath string, fix bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Dependency units arrive with VetxOnly set: they exist only so
	// fact-exporting analyzers can run. Out-of-module dependencies
	// export no facts, so the standard library is skipped wholesale;
	// module-local dependencies are analyzed facts-only, their
	// diagnostics discarded (the diagnostic-bearing invocation is the
	// one whose unit names the package directly).
	if cfg.VetxOnly && !factBearing(cfg.ImportPath) {
		writeVetx(cfg.VetxOutput, nil)
		return 0
	}

	pkg, err := loadUnit(&cfg)
	if err != nil {
		writeVetx(cfg.VetxOutput, nil)
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			return 0
		}
		fmt.Fprintf(stderr, "repolint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Seed the fact store from the module-local dependencies' vetx
	// files, in sorted order for determinism. A missing or undecodable
	// vetx only costs facts, never the run.
	store := NewFactStore()
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		if factBearing(p) {
			depPaths = append(depPaths, p)
		}
	}
	sort.Strings(depPaths)
	for _, p := range depPaths {
		if data, err := os.ReadFile(cfg.PackageVetx[p]); err == nil {
			_ = store.DecodePackage(p, data)
		}
	}

	diags, err := RunWithFacts(pkg, Analyzers(), store)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 1
	}
	vetx, err := store.EncodePackage(cfg.ImportPath)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 1
	}
	writeVetx(cfg.VetxOutput, vetx)
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	if fix {
		return applyUnitFixes(stderr, pkg, cfg.ImportPath, diags)
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Rule, d.Message)
	}
	return 2
}

// applyUnitFixes rewrites the unit's source files with every suggested
// fix, reports what was fixed and what remains, and returns 0 when
// nothing unfixable remains.
func applyUnitFixes(stderr io.Writer, pkg *Package, importPath string, diags []Diagnostic) int {
	fixed, applied, err := ApplyFixes(pkg.Fset, diags, os.ReadFile)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: applying fixes in %s: %v\n", importPath, err)
		return 1
	}
	files := make([]string, 0, len(fixed))
	for f := range fixed {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		mode := os.FileMode(0o644)
		if st, err := os.Stat(file); err == nil {
			mode = st.Mode().Perm()
		}
		if err := os.WriteFile(file, fixed[file], mode); err != nil {
			fmt.Fprintf(stderr, "repolint: writing fixes to %s: %v\n", file, err)
			return 1
		}
	}
	unfixed := 0
	for _, d := range diags {
		prefix := ""
		if len(d.Fixes) > 0 {
			prefix = "fixed: "
		} else {
			unfixed++
		}
		fmt.Fprintf(stderr, "%s: %s%s: %s\n", pkg.Fset.Position(d.Pos), prefix, d.Rule, d.Message)
	}
	if applied > 0 {
		fmt.Fprintf(stderr, "repolint: applied %d fix edits in %s\n", applied, importPath)
	}
	if unfixed > 0 {
		return 2
	}
	return 0
}

// loadUnit parses and type-checks the unit's non-test Go files,
// resolving imports through the compiler export data `go vet` lists in
// the config. Test files are excluded by policy (test code may panic,
// sleep, and mint contexts freely), which also means pure test
// variants ("p [p.test]" with only _test.go files) reduce to the
// already-analyzed base package or to nothing.
func loadUnit(cfg *vetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return &Package{Fset: fset, Types: types.NewPackage(cfg.ImportPath, "empty"), Info: newInfo()}, nil
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tcfg := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Sizes:    types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := newInfo()
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// newInfo allocates the types.Info maps the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// writeVetx records the unit's serialized facts (possibly empty) where
// the build system expects them, letting `go vet` cache the result and
// feed the facts to importing units. Errors are ignored because a
// missing facts file only costs cache hits and imported facts.
func writeVetx(path string, data []byte) {
	if path != "" {
		_ = os.WriteFile(path, data, 0o666)
	}
}
