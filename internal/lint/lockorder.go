package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AcquiresLocks is the fact lockorder exports for a function that
// acquires mutexes directly: callers in other packages holding one of
// the same locks would self-deadlock.
type AcquiresLocks struct {
	Locks []string `json:"locks"`
}

func (*AcquiresLocks) AFact() {}

func (f *AcquiresLocks) String() string {
	return "AcquiresLocks(" + strings.Join(f.Locks, ", ") + ")"
}

// Blocking is the fact lockorder exports for a function that can block
// indefinitely on external progress — a channel send or an HTTP
// round-trip, directly or transitively. Calling one while holding a
// lock serializes every other user of that lock on the slow operation.
type Blocking struct {
	Op string `json:"op"`
}

func (*Blocking) AFact() {}

func (f *Blocking) String() string { return "Blocking(" + f.Op + ")" }

// LockOrderAnalyzer protects the dist coordinator's lease table and
// every other mutex-guarded structure: within a package, pairs of locks
// must always be acquired in one order, and no lock may be held across
// a channel send, an HTTP round-trip, or a call to a function that
// blocks or re-acquires the same lock (facts carry both properties
// across packages).
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "requires a consistent per-struct mutex acquisition order and forbids " +
		"holding locks across channel sends, HTTP round-trips, and blocking calls",
	FactTypes: []Fact{(*AcquiresLocks)(nil), (*Blocking)(nil)},
	Run:       runLockOrder,
}

type loKind int

const (
	loLock loKind = iota
	loUnlock
	loBlock // a direct send or HTTP round-trip
	loCall  // a resolved call edge
)

type loEvent struct {
	pos  token.Pos
	kind loKind
	key  string // lock key for loLock/loUnlock
	desc string // human description for loBlock
	obj  *types.Func
}

// loFunc is the per-function event decomposition: the main body's
// events, plus each function literal's events as an independent scope
// (a closure's lock operations do not execute at its definition site).
type loFunc struct {
	decl   *ast.FuncDecl
	obj    *types.Func
	scopes [][]loEvent
}

func runLockOrder(pass *Pass) error {
	var fns []*loFunc
	byObj := make(map[*types.Func]*loFunc)
	for _, fd := range funcsIn(pass.Files) {
		obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		f := &loFunc{decl: fd, obj: obj}
		f.scopes = append(f.scopes, collectLockEvents(pass, fd.Body))
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				f.scopes = append(f.scopes, collectLockEvents(pass, lit.Body))
			}
			return true
		})
		fns = append(fns, f)
		byObj[obj] = f
	}

	// Direct per-function properties from the main scope only: a
	// goroutine body's send does not block its creator.
	locks := make(map[*types.Func][]string)
	blocking := make(map[*types.Func]string)
	for _, f := range fns {
		seen := make(map[string]bool)
		for _, e := range f.scopes[0] {
			switch e.kind {
			case loLock:
				if !seen[e.key] {
					seen[e.key] = true
					locks[f.obj] = append(locks[f.obj], e.key)
				}
			case loBlock:
				if blocking[f.obj] == "" {
					blocking[f.obj] = e.desc
				}
			case loCall:
				if blocking[f.obj] == "" && e.obj.Pkg() != nil && e.obj.Pkg() != pass.Pkg {
					var fact Blocking
					if pass.ImportObjectFact(e.obj, &fact) {
						blocking[f.obj] = "calls " + qualifiedName(e.obj) + ", which " + fact.Op
					}
				}
			}
		}
		sort.Strings(locks[f.obj])
	}
	// Transitive blocking over the local call graph.
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if blocking[f.obj] != "" {
				continue
			}
			for _, e := range f.scopes[0] {
				if e.kind == loCall && blocking[e.obj] != "" {
					blocking[f.obj] = "calls " + e.obj.Name() + ", which " + shortBlockDesc(blocking[e.obj])
					changed = true
					break
				}
			}
		}
	}
	for _, f := range fns {
		if ls := locks[f.obj]; len(ls) > 0 {
			pass.ExportObjectFact(f.obj, &AcquiresLocks{Locks: ls})
		}
		if op := blocking[f.obj]; op != "" {
			pass.ExportObjectFact(f.obj, &Blocking{Op: op})
		}
	}

	if !isInternal(pass.Pkg.Path()) {
		return nil
	}

	// Linear scan of each scope: track the held set, record acquisition
	// order edges, and flag blocking operations under a lock.
	type edge struct{ from, to string }
	edges := make(map[edge]token.Pos)
	for _, f := range fns {
		for _, events := range f.scopes {
			var heldOrder []string
			held := make(map[string]bool)
			for _, e := range events {
				switch e.kind {
				case loLock:
					for _, k := range heldOrder {
						if k != e.key {
							if _, ok := edges[edge{k, e.key}]; !ok {
								edges[edge{k, e.key}] = e.pos
							}
						}
					}
					if !held[e.key] {
						held[e.key] = true
						heldOrder = append(heldOrder, e.key)
					}
				case loUnlock:
					if held[e.key] {
						delete(held, e.key)
						for i, k := range heldOrder {
							if k == e.key {
								heldOrder = append(heldOrder[:i], heldOrder[i+1:]...)
								break
							}
						}
					}
				case loBlock:
					if len(heldOrder) > 0 {
						pass.Reportf(e.pos, "%s while holding %s; a stalled peer would wedge every other user of the lock",
							e.desc, strings.Join(heldOrder, ", "))
					}
				case loCall:
					if len(heldOrder) == 0 {
						continue
					}
					for _, k := range lockSetOf(pass, byObj, locks, e.obj) {
						if held[k] {
							pass.Reportf(e.pos, "call to %s re-acquires %s, which is already held here (self-deadlock)",
								qualifiedName(e.obj), k)
						}
					}
					if op := blockDescOf(pass, blocking, e.obj); op != "" {
						pass.Reportf(e.pos, "call to %s while holding %s: it %s",
							qualifiedName(e.obj), strings.Join(heldOrder, ", "), shortBlockDesc(op))
					}
				}
			}
		}
	}

	// Inconsistent acquisition order: both (a,b) and (b,a) observed.
	var pairs []edge
	for e := range edges {
		if e.from < e.to {
			if _, ok := edges[edge{e.to, e.from}]; ok {
				pairs = append(pairs, e)
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].from != pairs[j].from {
			return pairs[i].from < pairs[j].from
		}
		return pairs[i].to < pairs[j].to
	})
	for _, p := range pairs {
		p1, p2 := edges[p], edges[edge{p.to, p.from}]
		pos := p1
		if p2 > p1 {
			pos = p2
		}
		pass.Reportf(pos, "inconsistent lock order: %s and %s are acquired in both orders in this package (deadlock risk); pick one order",
			p.from, p.to)
	}
	return nil
}

// lockSetOf returns the lock keys fn acquires: locally computed for
// same-package functions, fact-imported otherwise.
func lockSetOf(pass *Pass, byObj map[*types.Func]*loFunc, locks map[*types.Func][]string, fn *types.Func) []string {
	if _, local := byObj[fn]; local {
		return locks[fn]
	}
	var fact AcquiresLocks
	if pass.ImportObjectFact(fn, &fact) {
		return fact.Locks
	}
	return nil
}

// blockDescOf returns fn's blocking description, local or imported.
func blockDescOf(pass *Pass, blocking map[*types.Func]string, fn *types.Func) string {
	if op, ok := blocking[fn]; ok {
		return op
	}
	var fact Blocking
	if pass.ImportObjectFact(fn, &fact) {
		return fact.Op
	}
	return ""
}

// shortBlockDesc keeps transitive blocking chains readable: only the
// first link is kept ("calls a, which calls b, which …" collapses).
func shortBlockDesc(op string) string {
	if i := strings.Index(op, ", which "); i >= 0 {
		return op[:i] + ", which blocks"
	}
	return op
}

// collectLockEvents gathers body's lock/unlock/send/HTTP/call events in
// source order, without descending into nested function literals
// (scanned as their own scopes) or deferred calls (a deferred Unlock
// means the lock is held to the end of the scope, which is exactly what
// not processing it models).
func collectLockEvents(pass *Pass, body *ast.BlockStmt) []loEvent {
	info := pass.TypesInfo
	var events []loEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			events = append(events, loEvent{pos: n.Pos(), kind: loBlock, desc: "sends on a channel"})
		case *ast.CallExpr:
			obj, _ := callee(info, n).(*types.Func)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "sync" && isMutexMethod(obj.Name()):
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				kind := loLock
				if strings.Contains(obj.Name(), "Unlock") {
					kind = loUnlock
				}
				events = append(events, loEvent{pos: n.Pos(), kind: kind, key: lockKey(info, sel.X)})
			case obj.Pkg().Path() == "net/http" && isRoundTripName(obj.Name()):
				events = append(events, loEvent{pos: n.Pos(), kind: loBlock,
					desc: "performs an HTTP round-trip (net/http." + obj.Name() + ")"})
			default:
				events = append(events, loEvent{pos: n.Pos(), kind: loCall, obj: obj})
			}
		}
		return true
	})
	//lint:allow determinism events come from a deterministic Inspect walk, and SliceStable keeps that visit order for equal positions — the combined key is total
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

func isMutexMethod(name string) bool {
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return true
	}
	return false
}

func isRoundTripName(name string) bool {
	switch name {
	case "Do", "Get", "Head", "Post", "PostForm", "RoundTrip":
		return true
	}
	return false
}

// lockKey names a mutex for order tracking. Field mutexes key on the
// owning named type ("Coordinator.mu"), so different receiver variable
// names agree; embedded mutexes key on the embedding type; bare mutex
// variables key on their (package-qualified, if global) name.
func lockKey(info *types.Info, recv ast.Expr) string {
	recv = ast.Unparen(recv)
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		t := info.TypeOf(sel.X)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + sel.Sel.Name
		}
		return types.ExprString(recv)
	}
	if id, ok := recv.(*ast.Ident); ok {
		t := info.TypeOf(id)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			return named.Obj().Name() + ".Mutex" // embedded sync.Mutex
		}
		if obj := info.Uses[id]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + id.Name
		}
		return id.Name
	}
	return types.ExprString(recv)
}
