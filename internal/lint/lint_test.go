package lint

import (
	"path/filepath"
	"testing"
)

// fixtureLoader is shared across the fixture tests: the loader memoizes
// type-checked packages and the `go list -export` lookups behind them.
var fixtureLoader = NewFixtureLoader(filepath.Join("testdata", "src"))

// TestAnalyzerFixtures runs each analyzer over its fixture tree and
// matches the surviving diagnostics against the fixtures' `// want`
// expectations — both directions: every diagnostic must be wanted, and
// every want must fire. Fixtures without wants (exitcode/internal/cli)
// are thereby asserted clean, covering the allowed patterns.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		path      string
		analyzers []*Analyzer
	}{
		{"determ/a", []*Analyzer{DeterminismAnalyzer}},
		{"determ/internal/sim", []*Analyzer{DeterminismAnalyzer}},
		{"determ/internal/mesh", []*Analyzer{DeterminismAnalyzer}},
		{"determ/internal/coll", []*Analyzer{DeterminismAnalyzer}},
		{"ctxflow/internal/core", []*Analyzer{CtxflowAnalyzer}},
		{"ctxflow/internal/coll", []*Analyzer{CtxflowAnalyzer}},
		{"obsclock/internal/obs", []*Analyzer{DeterminismAnalyzer}},
		{"obsclock/internal/pipeline", []*Analyzer{DeterminismAnalyzer}},
		{"obsclock/internal/dist", []*Analyzer{DeterminismAnalyzer}},
		{"ctxflow/internal/pipeline", []*Analyzer{CtxflowAnalyzer}},
		{"ctxflow/internal/dist", []*Analyzer{CtxflowAnalyzer}},
		{"errtax/internal/pipeline", []*Analyzer{ErrTaxonomyAnalyzer}},
		{"errtax/internal/dist", []*Analyzer{ErrTaxonomyAnalyzer}},
		{"exitcode/internal/report", []*Analyzer{ExitCodeAnalyzer}},
		{"exitcode/internal/cli", []*Analyzer{ExitCodeAnalyzer}},
		{"exitcode/cmd/tool", []*Analyzer{ExitCodeAnalyzer}},
		{"allowfix/internal/pipeline", []*Analyzer{ErrTaxonomyAnalyzer}},
		{"hotpath/internal/sim", []*Analyzer{HotPathAnalyzer}},
		{"hotpath/internal/mesh", []*Analyzer{HotPathAnalyzer}},
		{"leakcheck/internal/obs", []*Analyzer{LeakCheckAnalyzer}},
		{"leakcheck/internal/dist", []*Analyzer{LeakCheckAnalyzer}},
		{"lockorder/internal/store", []*Analyzer{LockOrderAnalyzer}},
		{"lockorder/internal/dist", []*Analyzer{LockOrderAnalyzer}},
		{"obsconv/internal/obs", []*Analyzer{ObsConvAnalyzer}},
		{"obsconv/internal/dist", []*Analyzer{ObsConvAnalyzer}},
	}
	for _, c := range cases {
		t.Run(c.path, func(t *testing.T) {
			failures, err := CheckFixture(fixtureLoader, c.path, c.analyzers...)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range failures {
				t.Errorf("%s: %s: %s", f.pos, f.kind, f.text)
			}
		})
	}
}

// TestSuggestedFixGoldens golden-tests the fix engine end to end: each
// fixture under fixes/ is analyzed, every suggested fix applied, and
// the result compared byte-for-byte against the .golden siblings. The
// harness also re-analyzes the fixed output and fails if any
// fix-bearing diagnostic remains (idempotence: a second `repolint
// -fix` run must be a no-op).
func TestSuggestedFixGoldens(t *testing.T) {
	cases := []struct {
		path      string
		analyzers []*Analyzer
	}{
		{"fixes/internal/pipeline", []*Analyzer{ErrTaxonomyAnalyzer}},
		{"fixes/internal/sweep", []*Analyzer{LeakCheckAnalyzer}},
		{"fixes/internal/dist", []*Analyzer{ObsConvAnalyzer}},
	}
	for _, c := range cases {
		t.Run(c.path, func(t *testing.T) {
			failures, err := CheckFixtureFixes(fixtureLoader, c.path, c.analyzers...)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range failures {
				t.Errorf("%s: %s: %s", f.pos, f.kind, f.text)
			}
		})
	}
}

// TestAnalyzerScoping pins the scope tables: the same source that is a
// diagnostic inside a scoped package must pass untouched outside it.
// The determ/a fixture (not a simulation package) calls nothing from
// time or math/rand, so this asserts the converse on the sim fixture:
// running the scoped checks requires the package path to match.
func TestAnalyzerScoping(t *testing.T) {
	// errtax fixtures live under .../internal/pipeline; the same
	// analyzer over a package outside the taxonomy scope reports
	// nothing even though determ/a has no //lint:allow comments.
	pkg, err := fixtureLoader.Load("determ/a")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{
		ErrTaxonomyAnalyzer, CtxflowAnalyzer, ExitCodeAnalyzer,
		LeakCheckAnalyzer, LockOrderAnalyzer, ObsConvAnalyzer,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		// determ/a prints from a map range (fmt.Println) and sorts with
		// partial orders, but none of that is in these analyzers'
		// jurisdiction; ctxflow's fresh-root and exitcode's panic rules
		// do not apply outside internal/ packages either.
		t.Errorf("out-of-scope diagnostic: %s at %s", d.Rule, pkg.Fset.Position(d.Pos))
	}
}

// TestSuiteOrderIsStable pins the analyzer registry: rule names are the
// //lint:allow vocabulary and must not drift silently.
func TestSuiteOrderIsStable(t *testing.T) {
	want := []string{
		"determinism", "ctxflow", "errtaxonomy", "exitcode",
		"hotpath", "leakcheck", "lockorder", "obsconv",
	}
	got := AnalyzerNames()
	if len(got) != len(want) {
		t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
		}
	}
}
