package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// A Fact is a serializable property an analyzer proves about a
// package-level object (a function, method, or type) and exports for
// downstream packages. Facts are the cross-package half of the suite:
// an intra-package analyzer stops at every import edge, but a fact
// recorded in the unit's vetx file rides the build graph, so "SpawnAt
// allocates" proven in internal/sim is visible when internal/mesh calls
// it.
//
// Fact implementations must be JSON-(un)marshalable pointer types.
// AFact is a marker; String renders the fact for humans and for
// `// want fact:"…"` fixture assertions.
type Fact interface {
	AFact()
	String() string
}

// storedFact is the serialized form of one exported fact.
type storedFact struct {
	// Analyzer is the exporting analyzer's rule name.
	Analyzer string `json:"analyzer"`
	// Type is the Go type name of the Fact implementation
	// (e.g. "AllocatesOnHotPath"); it keys decoding.
	Type string `json:"type"`
	// Data is the fact's JSON payload.
	Data json.RawMessage `json:"data"`
	// Render is the human-readable form ("key: String()"), kept in the
	// vetx file so diagnostics can explain imported facts without
	// decoding them.
	Render string `json:"render"`

	// file/line locate the exporting declaration; they are only
	// meaningful for facts exported in the current run (fixture
	// assertions), not for facts decoded from vetx.
	file string
	line int
}

// A FactStore holds facts keyed by package path and object. One store
// spans a whole analysis run: the unitchecker seeds it with the facts
// decoded from every dependency's vetx file, analyzers read through
// Pass.ImportObjectFact and write through Pass.ExportObjectFact, and
// the unit's own slice is re-encoded into its vetx output.
type FactStore struct {
	mu   sync.Mutex
	pkgs map[string]map[string][]*storedFact // pkg path -> object key -> facts
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{pkgs: make(map[string]map[string][]*storedFact)}
}

// objectKey names obj within its package: "F" for a package-level
// function, "T.M" for a method (pointer receivers are not
// distinguished), "T" for a type.
func objectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return obj.Name()
}

// factTypeName returns the unqualified type name of a Fact
// implementation ("*lint.AllocatesOnHotPath" -> "AllocatesOnHotPath").
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// export records fact for pkg/key. posn locates the exporting
// declaration for fixture assertions.
func (s *FactStore) export(analyzer, pkg, key string, fact Fact, posn token.Position) error {
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("marshaling %s fact for %s.%s: %w", factTypeName(fact), pkg, key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pkgs[pkg] == nil {
		s.pkgs[pkg] = make(map[string][]*storedFact)
	}
	s.pkgs[pkg][key] = append(s.pkgs[pkg][key], &storedFact{
		Analyzer: analyzer,
		Type:     factTypeName(fact),
		Data:     data,
		Render:   key + ": " + fact.String(),
		file:     posn.Filename,
		line:     posn.Line,
	})
	return nil
}

// lookup decodes the fact of factPtr's type recorded for pkg/key into
// factPtr, reporting whether one was found.
func (s *FactStore) lookup(pkg, key string, factPtr Fact) bool {
	want := factTypeName(factPtr)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sf := range s.pkgs[pkg][key] {
		if sf.Type == want && json.Unmarshal(sf.Data, factPtr) == nil {
			return true
		}
	}
	return false
}

// An ExportedFact is one fact as seen by the fixture harness: where it
// was exported and how it renders.
type ExportedFact struct {
	File   string
	Line   int
	Render string
}

// PackageFacts returns the facts exported for pkg in this run, in a
// deterministic order. Facts decoded from vetx carry no positions and
// render at line 0.
func (s *FactStore) PackageFacts(pkg string) []ExportedFact {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ExportedFact
	for _, facts := range s.pkgs[pkg] {
		for _, sf := range facts {
			out = append(out, ExportedFact{File: sf.file, Line: sf.line, Render: sf.Render})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Render < out[j].Render
	})
	return out
}

// vetxSchema versions the vetx payload; a mismatch means a stale cache
// entry from an older tool build, which go vet already prevents via the
// -V=full fingerprint, so decoding treats it as empty rather than
// failing.
const vetxSchema = 1

// vetxFile is the JSON layout of one package's facts in its vetx file.
type vetxFile struct {
	Schema int                      `json:"schema"`
	Facts  map[string][]*storedFact `json:"facts,omitempty"`
}

// EncodePackage serializes pkg's facts for its vetx file. The encoding
// is deterministic: object keys sort via encoding/json's map ordering
// and fact order within a key follows export order, which is fixed by
// the analyzer sequence and source order.
func (s *FactStore) EncodePackage(pkg string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Marshal(vetxFile{Schema: vetxSchema, Facts: s.pkgs[pkg]})
}

// DecodePackage merges the facts serialized in data (a dependency's
// vetx file) into the store under pkg. Empty data — the vetx of a
// factless or out-of-module package — decodes to nothing.
func (s *FactStore) DecodePackage(pkg string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var vf vetxFile
	if err := json.Unmarshal(data, &vf); err != nil {
		return fmt.Errorf("decoding facts for %s: %w", pkg, err)
	}
	if vf.Schema != vetxSchema {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pkgs[pkg] == nil {
		s.pkgs[pkg] = make(map[string][]*storedFact)
	}
	for key, facts := range vf.Facts {
		s.pkgs[pkg][key] = append(s.pkgs[pkg][key], facts...)
	}
	return nil
}

// ExportObjectFact records fact about obj, which must belong to the
// package under analysis. The fact becomes visible to
// ImportObjectFact in this run and is serialized into the unit's vetx
// file for downstream packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	if obj.Pkg() != p.Pkg {
		//lint:allow exitcode analyzer-API misuse is a bug in the lint suite itself; it must fail loudly in the suite's own tests, not flow into run results
		panic(fmt.Sprintf("lint: %s exported a fact for %s, which is outside the package under analysis",
			p.Analyzer.Name, obj.Name()))
	}
	if !p.declaresFactType(fact) {
		//lint:allow exitcode an undeclared FactType is a bug in the analyzer's registration, caught by the suite's own tests
		panic(fmt.Sprintf("lint: %s exported undeclared fact type %s (add it to FactTypes)",
			p.Analyzer.Name, factTypeName(fact)))
	}
	if err := p.facts.export(p.Analyzer.Name, obj.Pkg().Path(), objectKey(obj), fact, p.Fset.Position(obj.Pos())); err != nil {
		//lint:allow exitcode a fact type that fails json.Marshal is a bug in its declaration, caught by the suite's own tests
		panic("lint: " + err.Error())
	}
}

// ImportObjectFact copies the fact of factPtr's type recorded about obj
// — by this unit or by the dependency that declared obj — into factPtr,
// reporting whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, factPtr Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.facts.lookup(obj.Pkg().Path(), objectKey(obj), factPtr)
}

// declaresFactType reports whether the pass's analyzer declared fact's
// type in FactTypes, catching exports of the wrong analyzer's facts.
func (p *Pass) declaresFactType(fact Fact) bool {
	want := factTypeName(fact)
	for _, ft := range p.Analyzer.FactTypes {
		if factTypeName(ft) == want {
			return true
		}
	}
	return false
}

// renderReasons joins up to max reasons for a diagnostic or fact
// String, marking truncation, so messages stay short and stable.
func renderReasons(reasons []string, max int) string {
	if len(reasons) > max {
		return strings.Join(reasons[:max], "; ") + "; …"
	}
	return strings.Join(reasons, "; ")
}
