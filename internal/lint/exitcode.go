package lint

import (
	"go/ast"
	"go/types"
)

// boundaryPackages are the packages on the error-value side of the
// pipeline boundary: failures there must surface as classified errors
// so internal/cli can map them onto the typed exit codes. The
// simulation-model packages (sim, mesh, mp, spasm, ccnuma, workload,
// stats, apps/*) are deliberately NOT listed: their panics model
// simulated-machine invariant violations and are converted to
// *resilience.PanicError at the pipeline's recovery boundary.
var boundaryPackages = []string{
	"internal/pipeline",
	"internal/core",
	"internal/experiments",
	"internal/trace",
	"internal/report",
	"internal/resilience",
	"internal/fault",
	"internal/analytic",
	"internal/lint",
}

// ExitCodeAnalyzer preserves the typed exit-code contract
// (0 ok / 1 fail / 2 usage / 3 degraded / 130 cancelled) introduced in
// PR 3:
//
//   - os.Exit and log.Fatal* are forbidden outside internal/cli and the
//     main function of a main package: they exit with an untyped status
//     and skip deferred journal/cache cleanup;
//   - panic is additionally forbidden in the boundary packages (and in
//     main packages outside func main), where failures must be error
//     values for resilience.Classify.
var ExitCodeAnalyzer = &Analyzer{
	Name: "exitcode",
	Doc: "forbids os.Exit, log.Fatal*, and boundary-package panics outside " +
		"internal/cli and func main, preserving the typed exit-code contract",
	Run: runExitCode,
}

func runExitCode(pass *Pass) error {
	path := pass.Pkg.Path()
	if inScope(path, "internal/cli") {
		return nil
	}
	isMainPkg := pass.Pkg.Name() == "main"
	panicScoped := inScope(path, boundaryPackages...) || isMainPkg
	for _, fn := range funcsIn(pass.Files) {
		if isMainPkg && fn.Recv == nil && fn.Name.Name == "main" {
			continue // the one place a main package may exit or panic
		}
		checkExits(pass, fn, panicScoped)
	}
	return nil
}

// checkExits reports exit-style calls in fn.
func checkExits(pass *Pass, fn *ast.FuncDecl, panicScoped bool) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
				if panicScoped {
					pass.Reportf(call.Pos(), "panic crosses the pipeline error boundary; "+
						"return a classified error (internal/resilience) so the exit-code contract holds")
				}
				return true
			}
		}
		obj := callee(info, call)
		switch {
		case isPkgFunc(obj, "os", "Exit"):
			pass.Reportf(call.Pos(), "os.Exit bypasses the typed exit-code contract "+
				"(0/1/2/3/130) and deferred cleanup; return an error to internal/cli instead")
		case isPkgFunc(obj, "log", "Fatal"), isPkgFunc(obj, "log", "Fatalf"), isPkgFunc(obj, "log", "Fatalln"):
			pass.Reportf(call.Pos(), "log.%s exits with an untyped status; "+
				"return an error to internal/cli so the exit-code contract holds", obj.Name())
		}
		return true
	})
}
