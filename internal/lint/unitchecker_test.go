package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetMainProtocol pins the three vettool protocol endpoints the go
// command probes before trusting a -vettool binary.
func TestVetMainProtocol(t *testing.T) {
	var out, errb strings.Builder

	if code := VetMain(&out, &errb, []string{"-V=full"}); code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "repolint version lint-") {
		t.Errorf("-V=full printed %q, want a lint-<fingerprint> version line", out.String())
	}

	out.Reset()
	if code := VetMain(&out, &errb, []string{"-flags"}); code != 0 {
		t.Errorf("-flags exited %d: %s", code, errb.String())
	}
	// The declared flag set is how `go vet` learns to forward -fix to
	// every unit invocation; it must stay valid JSON naming the flag.
	if got := strings.TrimSpace(out.String()); !strings.Contains(got, `"Name":"fix"`) || !strings.HasPrefix(got, "[") {
		t.Errorf("-flags printed %q, want a JSON flag list declaring fix", got)
	}

	errb.Reset()
	if code := VetMain(&out, &errb, []string{"not-a-config"}); code != 1 {
		t.Errorf("unexpected argument exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unexpected vettool argument") {
		t.Errorf("unexpected-argument stderr %q lacks an explanation", errb.String())
	}

	errb.Reset()
	if code := VetMain(&out, &errb, []string{"-fix"}); code != 1 {
		t.Errorf("-fix without a unit config exited %d, want 1", code)
	}
}

// TestVetToolEndToEnd builds cmd/repolint and runs it the way CI does —
// `go vet -vettool` — over a package known to be clean, exercising the
// real unit-config protocol (export data resolution, vetx caching, the
// VetxOnly dependency pass) rather than the in-process fixtures.
func TestVetToolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	tool := filepath.Join(t.TempDir(), "repolint")
	build := exec.Command("go", "build", "-o", tool, "commchar/cmd/repolint")
	build.Dir = filepath.Join("..", "..")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building repolint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "commchar/internal/resilience")
	vet.Dir = filepath.Join("..", "..")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over a clean package failed: %v\n%s", err, out)
	}

	// And the self-vettool mode contributors use: `go run ./cmd/repolint`.
	if _, err := os.Stat(tool); err != nil {
		t.Fatal(err)
	}
	self := exec.Command(tool, "commchar/internal/resilience")
	self.Dir = filepath.Join("..", "..")
	if out, err := self.CombinedOutput(); err != nil {
		t.Fatalf("repolint self-vettool mode failed: %v\n%s", err, out)
	}
}
