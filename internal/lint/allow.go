package lint

import (
	"go/token"
	"strconv"
	"strings"
)

// AllowRule is the pseudo-rule under which problems with //lint:allow
// comments themselves are reported. It cannot be suppressed.
const AllowRule = "allow"

// An allow is one parsed //lint:allow comment.
//
//	//lint:allow <rule> <justification>
//
// It suppresses diagnostics of exactly the named rule on the comment's
// own line (trailing position) or on the line immediately below it
// (preceding position). A justification is mandatory: unexplained
// suppressions are what let the hand-audited conventions rot in the
// first place.
type allow struct {
	pos    token.Pos
	end    token.Pos
	file   string
	line   int
	rule   string
	reason string
	used   bool
}

const allowPrefix = "//lint:allow"

// parseAllows extracts every //lint:allow comment from the package.
func parseAllows(pkg *Package) []*allow {
	var allows []*allow
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				rule, reason, _ := strings.Cut(rest, " ")
				posn := pkg.Fset.Position(c.Pos())
				allows = append(allows, &allow{
					pos:    c.Pos(),
					end:    c.End(),
					file:   posn.Filename,
					line:   posn.Line,
					rule:   rule,
					reason: strings.TrimSpace(reason),
				})
			}
		}
	}
	return allows
}

// applyAllows filters diags through the package's //lint:allow
// comments and appends meta-diagnostics for malformed, unknown-rule,
// and stale allows.
func applyAllows(pkg *Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	allows := parseAllows(pkg)
	if len(allows) == 0 {
		return diags
	}
	known := make(map[string]bool)
	ran := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var kept []Diagnostic
	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, al := range allows {
			if al.rule != d.Rule || al.file != posn.Filename {
				continue
			}
			if posn.Line == al.line || posn.Line == al.line+1 {
				al.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}

	for _, al := range allows {
		switch {
		case al.rule == "":
			kept = append(kept, Diagnostic{Pos: al.pos, Rule: AllowRule,
				Message: "malformed //lint:allow: want //lint:allow <rule> <justification>"})
		case !known[al.rule]:
			kept = append(kept, Diagnostic{Pos: al.pos, Rule: AllowRule,
				Message: "unknown rule " + strconv.Quote(al.rule) + " in //lint:allow (known: " +
					strings.Join(AnalyzerNames(), ", ") + ")"})
		case al.reason == "":
			kept = append(kept, Diagnostic{Pos: al.pos, Rule: AllowRule,
				Message: "//lint:allow " + al.rule + " needs a justification after the rule name"})
		case !al.used && ran[al.rule]:
			// Stale only when the named analyzer actually ran on this
			// pass; a single-analyzer test run must not flag allows
			// aimed at the other rules. The fix deletes the comment (and
			// its whole line, when nothing else is on it).
			kept = append(kept, Diagnostic{Pos: al.pos, Rule: AllowRule,
				Message: "stale //lint:allow " + al.rule + ": it suppresses no diagnostic on this or the next line",
				Fixes: []SuggestedFix{{
					Message: "delete the stale allow comment",
					Edits:   []TextEdit{{Pos: al.pos, End: al.end, NewText: ""}},
				}}})
		}
	}
	return kept
}
