package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// NilSafe is the fact obsconv exports for an exported obs type whose
// exported pointer-receiver methods all tolerate a nil receiver: the
// whole observability seam rests on `var o *Observer = nil` being a
// zero-cost no-op, so consumers never need (and should not write) nil
// guards around calls.
type NilSafe struct{}

func (*NilSafe) AFact() {}

func (*NilSafe) String() string { return "NilSafe" }

// ObsConvAnalyzer enforces the observability conventions: in
// internal/obs, every exported pointer-receiver method must be
// nil-receiver safe (guard or no field access); everywhere else, metric
// names registered on an obs.Registry must be commchar_-prefixed
// snake_case, counters must end in _total, names must not be built
// dynamically (unbounded series cardinality), and nil guards around
// calls to NilSafe types are redundant and removable.
var ObsConvAnalyzer = &Analyzer{
	Name: "obsconv",
	Doc: "checks nil-receiver safety of obs types and commchar_* metric naming " +
		"(snake_case, _total counters, no dynamic names)",
	FactTypes: []Fact{(*NilSafe)(nil)},
	Run:       runObsConv,
}

func runObsConv(pass *Pass) error {
	if inScope(pass.Pkg.Path(), "internal/obs") {
		checkNilSafety(pass)
	}
	if !isInternal(pass.Pkg.Path()) && pass.Pkg.Name() != "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkMetricName(pass, n)
			case *ast.IfStmt:
				checkRedundantNilGuard(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkNilSafety verifies the declaring-side convention and exports
// NilSafe facts for the types that uphold it.
func checkNilSafety(pass *Pass) {
	// unsafe collects exported types with at least one violating method;
	// methodsOf counts exported pointer-receiver methods per type.
	unsafe := make(map[*types.TypeName]bool)
	methodsOf := make(map[*types.TypeName]int)
	for _, fd := range funcsIn(pass.Files) {
		tn, recvObj := pointerReceiver(pass.TypesInfo, fd)
		if tn == nil || !tn.Exported() || !fd.Name.IsExported() {
			continue
		}
		methodsOf[tn]++
		if recvObj == nil {
			continue // unnamed receiver: the method cannot dereference it
		}
		if !hasNilGuard(pass.TypesInfo, fd.Body, recvObj) && derefsReceiver(pass.TypesInfo, fd.Body, recvObj) {
			unsafe[tn] = true
			pass.Reportf(fd.Name.Pos(), "exported method (*%s).%s dereferences its receiver without a nil guard; "+
				"obs handles must be safe no-ops on nil (start with `if %s == nil`)",
				tn.Name(), fd.Name.Name, recvObj.Name())
		}
	}
	var safe []*types.TypeName
	for tn, n := range methodsOf {
		if n > 0 && !unsafe[tn] {
			safe = append(safe, tn)
		}
	}
	sort.Slice(safe, func(i, j int) bool { return safe[i].Name() < safe[j].Name() })
	for _, tn := range safe {
		pass.ExportObjectFact(tn, &NilSafe{})
	}
}

// pointerReceiver returns the receiver's type name and object when fd
// is a method with a pointer receiver on a type declared in this
// package.
func pointerReceiver(info *types.Info, fd *ast.FuncDecl) (*types.TypeName, types.Object) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return nil, nil
	}
	field := fd.Recv.List[0]
	t := info.TypeOf(field.Type)
	p, ok := t.(*types.Pointer)
	if !ok {
		return nil, nil
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return nil, nil
	}
	var recvObj types.Object
	if len(field.Names) == 1 && field.Names[0].Name != "_" {
		recvObj = info.Defs[field.Names[0]]
	}
	return named.Obj(), recvObj
}

// hasNilGuard reports whether body compares recv against nil anywhere.
func hasNilGuard(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if isNilIdent(info, y) {
			x, y = y, x
		}
		if !isNilIdent(info, x) {
			return true
		}
		if id, ok := y.(*ast.Ident); ok && info.Uses[id] == recv {
			found = true
		}
		return true
	})
	return found
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// derefsReceiver reports whether body accesses a field of recv directly
// (method calls on recv are fine: the callee guards itself).
func derefsReceiver(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok || info.Uses[id] != recv {
				return true
			}
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				found = true
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && info.Uses[id] == recv {
				found = true
			}
		}
		return true
	})
	return found
}

// metricNameRE is the naming convention: commchar_-prefixed snake_case.
var metricNameRE = regexp.MustCompile(`^commchar(_[a-z0-9]+)+$`)

// metricPrefixRE validates the constant prefix of a concatenated name:
// it must itself be convention-shaped and end at an underscore.
var metricPrefixRE = regexp.MustCompile(`^commchar(_[a-z0-9]+)*_$`)

// registryMethods maps obs.Registry registration methods to whether
// they register a counter (and thus need the _total suffix).
var registryMethods = map[string]bool{
	"Counter": true, "CounterFunc": true, "CounterVecFunc": true,
	"Gauge": false, "GaugeFunc": false, "ConstGauge": false, "Histogram": false,
}

// checkMetricName enforces the naming discipline at every Registry
// registration call site.
func checkMetricName(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	obj, _ := callee(info, call).(*types.Func)
	if obj == nil || len(call.Args) == 0 {
		return
	}
	isCounter, ok := registryMethods[obj.Name()]
	if !ok || !isRegistryMethod(obj) {
		return
	}
	nameArg := call.Args[0]
	name, known := constantString(info, nameArg)
	if !known {
		if !constPrefixedConcat(info, nameArg) {
			pass.Reportf(nameArg.Pos(), "dynamic metric name in %s: every distinct value creates a new time series; "+
				"use a constant commchar_* name (concatenating onto a constant commchar_* prefix is fine)", obj.Name())
		}
		return
	}
	switch {
	case !metricNameRE.MatchString(name):
		fixed := fixMetricName(name, isCounter)
		d := Diagnostic{Pos: nameArg.Pos(), Rule: pass.Analyzer.Name,
			Message: "metric name " + strconv.Quote(name) + " violates the commchar_* snake_case convention"}
		if lit, ok := ast.Unparen(nameArg).(*ast.BasicLit); ok && metricNameRE.MatchString(fixed) {
			d.Fixes = []SuggestedFix{{
				Message: "rename to " + strconv.Quote(fixed),
				Edits:   []TextEdit{{Pos: lit.Pos(), End: lit.End(), NewText: strconv.Quote(fixed)}},
			}}
		}
		pass.Report(d)
	case isCounter && !strings.HasSuffix(name, "_total"):
		d := Diagnostic{Pos: nameArg.Pos(), Rule: pass.Analyzer.Name,
			Message: "counter " + strconv.Quote(name) + " must end in _total"}
		if lit, ok := ast.Unparen(nameArg).(*ast.BasicLit); ok {
			d.Fixes = []SuggestedFix{{
				Message: "rename to " + strconv.Quote(name+"_total"),
				Edits:   []TextEdit{{Pos: lit.Pos(), End: lit.End(), NewText: strconv.Quote(name + "_total")}},
			}}
		}
		pass.Report(d)
	}
	// Vector registrations additionally take a label name, which must be
	// constant: a dynamic label name is unbounded cardinality by
	// construction.
	if obj.Name() == "CounterVecFunc" && len(call.Args) >= 3 {
		if _, known := constantString(info, call.Args[2]); !known {
			pass.Reportf(call.Args[2].Pos(), "dynamic label name in CounterVecFunc: label names must be constants "+
				"so series cardinality stays bounded")
		}
	}
}

// isRegistryMethod reports whether obj is a method on the obs Registry
// type (module path or fixture path).
func isRegistryMethod(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Name() == "Registry" && tn.Pkg() != nil && inScope(tn.Pkg().Path(), "internal/obs")
}

// constPrefixedConcat accepts the idiomatic dynamic-but-bounded form:
// a + chain whose leftmost operand is a convention-shaped constant
// prefix ("commchar_dist_" + name).
func constPrefixedConcat(info *types.Info, e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD {
		return false
	}
	left := be.X
	for {
		inner, ok := ast.Unparen(left).(*ast.BinaryExpr)
		if !ok || inner.Op != token.ADD {
			break
		}
		left = inner.X
	}
	prefix, known := constantString(info, left)
	return known && metricPrefixRE.MatchString(prefix)
}

// fixMetricName mechanically converts name to the convention:
// camelCase and dashes become snake_case, the commchar_ prefix is
// prepended if missing, and counters gain _total.
func fixMetricName(name string, counter bool) string {
	var b strings.Builder
	prevUnderscore := false
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			if !prevUnderscore && b.Len() > 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
			prevUnderscore = false
		case (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9'):
			b.WriteRune(r)
			prevUnderscore = false
		default:
			if !prevUnderscore && b.Len() > 0 {
				b.WriteByte('_')
			}
			prevUnderscore = true
		}
	}
	fixed := strings.Trim(b.String(), "_")
	if fixed != "commchar" && !strings.HasPrefix(fixed, "commchar_") {
		fixed = "commchar_" + fixed
	}
	if counter && !strings.HasSuffix(fixed, "_total") {
		fixed += "_total"
	}
	return fixed
}

// checkRedundantNilGuard flags `if x != nil { x.M(...) }` where x's
// type carries the NilSafe fact: the guard re-implements what the
// callee already guarantees, and readers learn to doubt the seam.
func checkRedundantNilGuard(pass *Pass, ifStmt *ast.IfStmt) {
	if ifStmt.Init != nil || ifStmt.Else != nil || len(ifStmt.Body.List) != 1 {
		return
	}
	cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ {
		return
	}
	guarded := ast.Unparen(cond.X)
	if isNilIdent(pass.TypesInfo, guarded) {
		guarded = ast.Unparen(cond.Y)
	} else if !isNilIdent(pass.TypesInfo, cond.Y) {
		return
	}
	t := pass.TypesInfo.TypeOf(guarded)
	p, ok := t.(*types.Pointer)
	if !ok {
		return
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return
	}
	var fact NilSafe
	if !pass.ImportObjectFact(named.Obj(), &fact) {
		return
	}
	stmt, ok := ifStmt.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return
	}
	callExpr, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(callExpr.Fun).(*ast.SelectorExpr)
	if !ok || types.ExprString(ast.Unparen(sel.X)) != types.ExprString(guarded) {
		return
	}
	fix := SuggestedFix{
		Message: "drop the redundant nil guard",
		Edits: []TextEdit{
			{Pos: ifStmt.Pos(), End: ifStmt.Body.Lbrace + 1, NewText: ""},
			{Pos: ifStmt.Body.Rbrace, End: ifStmt.Body.Rbrace + 1, NewText: ""},
		},
	}
	pass.ReportFix(ifStmt.Pos(), fix, "redundant nil guard: *%s is nil-safe (fact NilSafe from %s); call %s.%s directly",
		named.Obj().Name(), named.Obj().Pkg().Path(), types.ExprString(guarded), sel.Sel.Name)
}
