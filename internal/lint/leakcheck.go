package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UncancellableLoop is the fact leakcheck exports for a function that
// loops forever with no cancellation path (no context parameter, no
// channel receive, no select): starting it with `go` in any package
// creates a goroutine that shutdown cannot reach.
type UncancellableLoop struct{}

func (*UncancellableLoop) AFact() {}

func (*UncancellableLoop) String() string { return "UncancellableLoop" }

// Handle is the fact leakcheck exports for constructor-style functions
// (New*/Start*/Open*) returning a type with a release method: callers
// in any package must release the result or let it escape to an owner
// that will.
type Handle struct {
	Release string `json:"release"`
}

func (*Handle) AFact() {}

func (h *Handle) String() string { return "Handle(release with " + h.Release + ")" }

// LeakCheckAnalyzer guards goroutine and resource lifecycles: every
// sweep worker, coordinator, and observer this repo starts must be
// stoppable, because the fault-injection tests kill and restart them
// constantly. Tickers and timers must be stopped, goroutines that loop
// must have a cancellation path (context, done channel, select), and
// handles returned by constructors must be released.
var LeakCheckAnalyzer = &Analyzer{
	Name: "leakcheck",
	Doc: "requires Stop on tickers/timers, a cancellation path in looping " +
		"goroutines, and release of constructor-returned handles",
	FactTypes: []Fact{(*UncancellableLoop)(nil), (*Handle)(nil)},
	Run:       runLeakCheck,
}

// releaseMethods are the recognized handle-release method names, in
// preference order.
var releaseMethods = []string{"Close", "Stop", "Shutdown"}

func runLeakCheck(pass *Pass) error {
	fns := funcsIn(pass.Files)
	byObj := make(map[*types.Func]*ast.FuncDecl)
	for _, fd := range fns {
		if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			byObj[obj] = fd
		}
	}

	// Facts first, diagnostics second, so same-package consumers see
	// the package's own constructors and loops.
	for _, fd := range fns {
		exportLeakFacts(pass, fd)
	}
	if !isInternal(pass.Pkg.Path()) && pass.Pkg.Name() != "main" {
		return nil
	}
	for _, fd := range fns {
		checkTimers(pass, fd)
		checkGoroutines(pass, fd, byObj)
		checkHandles(pass, fd)
	}
	return nil
}

// exportLeakFacts records fn's UncancellableLoop and Handle facts.
func exportLeakFacts(pass *Pass, fd *ast.FuncDecl) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if !signatureTakesContext(sig) && loopsWithoutCancel(pass.TypesInfo, fd.Body) {
		pass.ExportObjectFact(obj, &UncancellableLoop{})
	}
	name := fd.Name.Name
	if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Start") || strings.HasPrefix(name, "Open") {
		results := sig.Results()
		for i := 0; i < results.Len(); i++ {
			if m := releaseMethodOf(pass.Pkg, results.At(i).Type()); m != "" {
				pass.ExportObjectFact(obj, &Handle{Release: m})
				break
			}
		}
	}
}

// releaseMethodOf returns the release method name of t when t is (a
// pointer to) a named type defined in pkg whose method set includes
// Close, Stop, or Shutdown; "" otherwise.
func releaseMethodOf(pkg *types.Package, t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pkg {
		return ""
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	for _, name := range releaseMethods {
		if sel := ms.Lookup(pkg, name); sel != nil {
			return name
		}
	}
	return ""
}

// signatureTakesContext reports whether any parameter is a
// context.Context: such a function is cancellable by contract.
func signatureTakesContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// loopsWithoutCancel reports whether body contains an unbounded loop
// (a `for` with no condition) and no cancellation evidence anywhere: no
// reference to a context value, no channel receive, no range over a
// channel, no select.
func loopsWithoutCancel(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	unbounded, cancel := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond == nil {
				unbounded = true
			}
		case *ast.SelectStmt:
			cancel = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				cancel = true
			}
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Chan); ok {
				cancel = true
			}
		case *ast.Ident:
			if isContextType(info.TypeOf(n)) {
				cancel = true
			}
		}
		return true
	})
	return unbounded && !cancel
}

// checkTimers flags time.Tick (unstoppable) and tickers/timers that are
// neither stopped nor handed off.
func checkTimers(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isPkgFunc(callee(info, call), "time", "Tick") {
				pass.Reportf(call.Pos(), "time.Tick leaks its ticker; use time.NewTicker and defer Stop")
			}
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(info, call)
		if !isPkgFunc(fn, "time", "NewTicker") && !isPkgFunc(fn, "time", "NewTimer") {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		released, escapes := handleDisposition(info, fd.Body, obj, id, releaseMethods)
		if !released && !escapes {
			fix := SuggestedFix{
				Message: "defer " + id.Name + ".Stop() after creating it",
				Edits:   []TextEdit{{Pos: as.End(), End: as.End(), NewText: "\ndefer " + id.Name + ".Stop()"}},
			}
			pass.ReportFix(as.Pos(), fix,
				"%s.%s never stops %s; the ticker/timer goroutine leaks (defer %s.Stop())",
				"time", fn.Name(), id.Name, id.Name)
		}
		return true
	})
}

// handleDisposition classifies how obj (a handle-holding local) is used
// in body: released reports a call to one of methods on it; escapes
// reports any use other than a selector access (returned, reassigned,
// passed along, stored), where responsibility moves elsewhere. def is
// the defining ident, which never counts as a use.
func handleDisposition(info *types.Info, body *ast.BlockStmt, obj types.Object, def *ast.Ident, methods []string) (released, escapes bool) {
	selUses := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && info.Uses[id] == obj {
			selUses[id] = true
			for _, m := range methods {
				if sel.Sel.Name == m {
					released = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id != def && info.Uses[id] == obj && !selUses[id] {
			escapes = true
		}
		return true
	})
	return released, escapes
}

// checkGoroutines flags go statements whose body (or callee) loops
// forever without a cancellation path.
func checkGoroutines(pass *Pass, fd *ast.FuncDecl, byObj map[*types.Func]*ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			if loopsWithoutCancel(info, fun.Body) {
				pass.Reportf(g.Pos(), "goroutine loops forever with no cancellation path "+
					"(no ctx, channel receive, or select); plumb a context or done channel so shutdown can reach it")
			}
		default:
			obj, _ := callee(info, g.Call).(*types.Func)
			if obj == nil {
				return true
			}
			if decl, local := byObj[obj]; local {
				sig := obj.Type().(*types.Signature)
				if !signatureTakesContext(sig) && !goCallPassesContext(info, g.Call) && loopsWithoutCancel(info, decl.Body) {
					pass.Reportf(g.Pos(), "go %s starts a loop with no cancellation path; "+
						"plumb a context or done channel so shutdown can reach it", obj.Name())
				}
			} else if obj.Pkg() != nil && obj.Pkg() != pass.Pkg {
				var fact UncancellableLoop
				if pass.ImportObjectFact(obj, &fact) {
					pass.Reportf(g.Pos(), "go %s starts a loop with no cancellation path "+
						"(proven in %s); plumb a context or done channel so shutdown can reach it",
						qualifiedName(obj), obj.Pkg().Path())
				}
			}
		}
		return true
	})
}

// goCallPassesContext reports whether the go statement's call passes a
// context argument (the callee may consume it variadically or the
// signature check already caught it; this covers closures over args).
func goCallPassesContext(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextType(info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// checkHandles flags discarded or never-released results of
// Handle-fact constructors, local or imported.
func checkHandles(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj, h := handleCallee(pass, call); obj != nil {
				pass.Reportf(call.Pos(), "result of %s is a handle but is discarded; release it with %s",
					qualifiedName(obj), h.Release)
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			obj, h := handleCallee(pass, call)
			if obj == nil {
				return true
			}
			for _, l := range st.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				lobj := info.Defs[id]
				if lobj == nil {
					lobj = info.Uses[id]
				}
				if lobj == nil || !typeHasMethod(lobj.Type(), h.Release) {
					continue
				}
				released, escapes := handleDisposition(info, fd.Body, lobj, id, releaseMethods)
				if !released && !escapes {
					fix := SuggestedFix{
						Message: "defer " + id.Name + "." + h.Release + "() after acquiring it",
						Edits:   []TextEdit{{Pos: st.End(), End: st.End(), NewText: "\ndefer " + id.Name + "." + h.Release + "()"}},
					}
					pass.ReportFix(st.Pos(), fix,
						"%s returned by %s is never released and never escapes; defer %s.%s()",
						id.Name, qualifiedName(obj), id.Name, h.Release)
				}
			}
		}
		return true
	})
}

// handleCallee resolves call's callee and its Handle fact, if any.
func handleCallee(pass *Pass, call *ast.CallExpr) (*types.Func, *Handle) {
	obj, _ := callee(pass.TypesInfo, call).(*types.Func)
	if obj == nil {
		return nil, nil
	}
	var h Handle
	if !pass.ImportObjectFact(obj, &h) {
		return nil, nil
	}
	return obj, &h
}

// typeHasMethod reports whether t (or *t) has a method named name.
func typeHasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
