package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is a stdlib-only stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads fixture
// packages from a testdata/src GOPATH-style tree, type-checks them
// (resolving standard-library imports through `go list -export` build
// cache data and sibling fixtures from source), runs analyzers, and
// compares diagnostics against `// want "regexp"` comments.

// A FixtureLoader loads and caches type-checked packages beneath a
// testdata/src root. Import paths that exist as directories under the
// root are compiled from source; anything else resolves through the go
// command's export data, so fixtures may import both each other and
// the standard library.
type FixtureLoader struct {
	Root string // the testdata/src directory
	Fset *token.FileSet

	mu   sync.Mutex
	pkgs map[string]*Package
	gc   types.Importer
}

// NewFixtureLoader returns a loader rooted at root (testdata/src).
func NewFixtureLoader(root string) *FixtureLoader {
	fset := token.NewFileSet()
	l := &FixtureLoader{Root: root, Fset: fset, pkgs: make(map[string]*Package)}
	l.gc = importer.ForCompiler(fset, "gc", exportDataLookup())
	return l
}

// exportDataLookup resolves an import path to compiler export data via
// `go list -export`, the same data `go vet` feeds the real vettool.
func exportDataLookup() func(path string) (io.ReadCloser, error) {
	var mu sync.Mutex
	cache := make(map[string]string)
	return func(path string) (io.ReadCloser, error) {
		mu.Lock()
		file, ok := cache[path]
		mu.Unlock()
		if !ok {
			out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
			if err != nil {
				return nil, fmt.Errorf("go list -export %s: %w", path, err)
			}
			file = strings.TrimSpace(string(out))
			if file == "" {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			mu.Lock()
			cache[path] = file
			mu.Unlock()
		}
		return os.Open(file)
	}
}

// Load type-checks the fixture package at import path (a directory
// beneath Root), memoizing the result.
func (l *FixtureLoader) Load(path string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load(path)
}

func (l *FixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files", path)
	}
	info := newInfo()
	tcfg := types.Config{
		Importer: &fixtureImporter{loader: l},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := tcfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %w", path, err)
	}
	pkg := &Package{Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// fixtureImporter resolves fixture-local imports from source and
// everything else from export data.
type fixtureImporter struct{ loader *FixtureLoader }

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	l := fi.loader
	if st, err := os.Stat(filepath.Join(l.Root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.Import(path)
}

// A wantExpectation is one `// want "regexp"` (diagnostic) or
// `// want fact:"regexp"` (exported fact) assertion.
type wantExpectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	fact bool
	met  bool
}

var (
	wantRE    = regexp.MustCompile(`// want((?:[ \t]+(?:fact:)?"(?:[^"\\]|\\.)*")+)`)
	wantArgRE = regexp.MustCompile(`(fact:)?"(?:[^"\\]|\\.)*"`)
)

// parseWants extracts want expectations from the fixture's comments.
func parseWants(pkg *Package) ([]*wantExpectation, error) {
	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					isFact := strings.HasPrefix(q, "fact:")
					pat, err := strconv.Unquote(strings.TrimPrefix(q, "fact:"))
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %w", posn.Filename, posn.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %w", posn.Filename, posn.Line, err)
					}
					wants = append(wants, &wantExpectation{
						file: posn.Filename, line: posn.Line, re: re, text: pat, fact: isFact,
					})
				}
			}
		}
	}
	return wants, nil
}

// failure is one mismatch between reported and expected diagnostics.
type failure struct {
	pos  string
	kind string
	text string
}

// CheckFixture runs the analyzers over the fixture package at path and
// matches the surviving diagnostics against the fixture's `// want`
// comments. Every diagnostic must be wanted on its line (pattern
// matched against "rule: message"), and every want must fire. Fact
// assertions (`// want fact:"…"`) match against the facts exported for
// this package, rendered as "objectKey: FactString" at the exporting
// declaration's line; unasserted facts are not failures (fixtures opt
// in to the facts they pin). Fixture-local imports are fact-analyzed
// first, so cross-package facts flow exactly as under the unitchecker.
// The returned failures are empty on success.
func CheckFixture(l *FixtureLoader, path string, analyzers ...*Analyzer) ([]failure, error) {
	diags, store, pkg, err := runFixture(l, path, analyzers)
	if err != nil {
		return nil, err
	}
	wants, err := parseWants(pkg)
	if err != nil {
		return nil, err
	}

	var failures []failure
	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		text := d.Rule + ": " + d.Message
		matched := false
		for _, w := range wants {
			if !w.fact && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(text) {
				w.met = true
				matched = true
			}
		}
		if !matched {
			failures = append(failures, failure{
				pos:  fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line),
				kind: "unexpected diagnostic",
				text: text,
			})
		}
	}
	for _, ef := range store.PackageFacts(path) {
		for _, w := range wants {
			if w.fact && w.file == ef.File && w.line == ef.Line && w.re.MatchString(ef.Render) {
				w.met = true
			}
		}
	}
	for _, w := range wants {
		if !w.met {
			kind := "unmatched want"
			if w.fact {
				kind = "unmatched fact want"
			}
			failures = append(failures, failure{
				pos:  fmt.Sprintf("%s:%d", filepath.Base(w.file), w.line),
				kind: kind,
				text: w.text,
			})
		}
	}
	sort.Slice(failures, func(i, j int) bool {
		if failures[i].pos != failures[j].pos {
			return failures[i].pos < failures[j].pos
		}
		return failures[i].text < failures[j].text
	})
	return failures, nil
}

// runFixture loads the fixture at path, fact-analyzes its fixture-local
// imports into a fresh store, and runs the analyzers over it.
func runFixture(l *FixtureLoader, path string, analyzers []*Analyzer) ([]Diagnostic, *FactStore, *Package, error) {
	pkg, err := l.Load(path)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	store := NewFactStore()
	if err := ensureDepFacts(l, pkg, analyzers, store, map[string]bool{path: true}); err != nil {
		return nil, nil, nil, err
	}
	diags, err := RunWithFacts(pkg, analyzers, store)
	if err != nil {
		return nil, nil, nil, err
	}
	return diags, store, pkg, nil
}

// ensureDepFacts runs the analyzers over every fixture-local import of
// pkg, depth-first, discarding their diagnostics but keeping their
// exported facts in store — the fixture-harness equivalent of the
// unitchecker seeding a unit's store from its dependencies' vetx files.
func ensureDepFacts(l *FixtureLoader, pkg *Package, analyzers []*Analyzer, store *FactStore, visited map[string]bool) error {
	for _, imp := range pkg.Types.Imports() {
		path := imp.Path()
		if visited[path] {
			continue
		}
		if st, err := os.Stat(filepath.Join(l.Root, filepath.FromSlash(path))); err != nil || !st.IsDir() {
			continue
		}
		visited[path] = true
		dep, err := l.Load(path)
		if err != nil {
			return err
		}
		if err := ensureDepFacts(l, dep, analyzers, store, visited); err != nil {
			return err
		}
		if _, err := RunWithFacts(dep, analyzers, store); err != nil {
			return err
		}
	}
	return nil
}

// CheckFixtureFixes golden-tests SuggestedFixes: it runs the analyzers
// over the fixture at path, applies every fix, and compares each
// rewritten file against its `.golden` sibling. It additionally checks
// idempotence — re-analyzing the golden output must yield no further
// fixes — and that every `.golden` file in the fixture corresponds to a
// rewritten source file.
func CheckFixtureFixes(l *FixtureLoader, path string, analyzers ...*Analyzer) ([]failure, error) {
	diags, _, pkg, err := runFixture(l, path, analyzers)
	if err != nil {
		return nil, err
	}
	fixed, _, err := ApplyFixes(pkg.Fset, diags, os.ReadFile)
	if err != nil {
		return nil, err
	}

	var failures []failure
	fail := func(file, kind, text string) {
		failures = append(failures, failure{pos: filepath.Base(file), kind: kind, text: text})
	}
	files := make([]string, 0, len(fixed))
	overlay := make(map[string][]byte)
	for f := range fixed {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		golden, err := os.ReadFile(file + ".golden")
		if err != nil {
			fail(file, "missing golden", "fixes rewrote this file but no .golden sibling exists")
			continue
		}
		if string(golden) != string(fixed[file]) {
			fail(file, "golden mismatch", firstDiff(string(golden), string(fixed[file])))
			continue
		}
		overlay[filepath.Base(file)] = fixed[file]
	}

	// Every .golden in the fixture must have been produced.
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".golden") {
			continue
		}
		src := filepath.Join(dir, strings.TrimSuffix(e.Name(), ".golden"))
		if _, ok := fixed[src]; !ok {
			fail(src, "unused golden", "a .golden sibling exists but the analyzers produced no fixes for this file")
		}
	}
	if len(failures) > 0 || len(overlay) == 0 {
		return failures, nil
	}

	// Idempotence: the golden output must be fix-clean.
	fixedPkg, err := l.loadOverlay(path, overlay)
	if err != nil {
		return nil, fmt.Errorf("reloading %s with fixes applied: %w", path, err)
	}
	store := NewFactStore()
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	if err := ensureDepFacts(l, fixedPkg, analyzers, store, map[string]bool{path: true}); err != nil {
		return nil, err
	}
	rediags, err := RunWithFacts(fixedPkg, analyzers, store)
	if err != nil {
		return nil, err
	}
	for _, d := range rediags {
		if len(d.Fixes) > 0 {
			posn := fixedPkg.Fset.Position(d.Pos)
			fail(posn.Filename, "not idempotent",
				fmt.Sprintf("line %d: fix applied but a fixable diagnostic remains: %s", posn.Line, d.Message))
		}
	}
	return failures, nil
}

// loadOverlay type-checks the fixture at path with some file contents
// replaced (keyed by base name), without memoizing the result. It backs
// the idempotence half of CheckFixtureFixes.
func (l *FixtureLoader) loadOverlay(path string, overlay map[string][]byte) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		var src any
		if data, ok := overlay[name]; ok {
			src = data
		}
		f, err := parser.ParseFile(l.Fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	tcfg := types.Config{
		Importer: &fixtureImporter{loader: l},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := tcfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture %s (fixed): %w", path, err)
	}
	return &Package{Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// firstDiff renders the first differing line between two texts.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("golden has %d lines, got %d", len(wl), len(gl))
}
