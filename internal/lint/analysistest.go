package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is a stdlib-only stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads fixture
// packages from a testdata/src GOPATH-style tree, type-checks them
// (resolving standard-library imports through `go list -export` build
// cache data and sibling fixtures from source), runs analyzers, and
// compares diagnostics against `// want "regexp"` comments.

// A FixtureLoader loads and caches type-checked packages beneath a
// testdata/src root. Import paths that exist as directories under the
// root are compiled from source; anything else resolves through the go
// command's export data, so fixtures may import both each other and
// the standard library.
type FixtureLoader struct {
	Root string // the testdata/src directory
	Fset *token.FileSet

	mu   sync.Mutex
	pkgs map[string]*Package
	gc   types.Importer
}

// NewFixtureLoader returns a loader rooted at root (testdata/src).
func NewFixtureLoader(root string) *FixtureLoader {
	fset := token.NewFileSet()
	l := &FixtureLoader{Root: root, Fset: fset, pkgs: make(map[string]*Package)}
	l.gc = importer.ForCompiler(fset, "gc", exportDataLookup())
	return l
}

// exportDataLookup resolves an import path to compiler export data via
// `go list -export`, the same data `go vet` feeds the real vettool.
func exportDataLookup() func(path string) (io.ReadCloser, error) {
	var mu sync.Mutex
	cache := make(map[string]string)
	return func(path string) (io.ReadCloser, error) {
		mu.Lock()
		file, ok := cache[path]
		mu.Unlock()
		if !ok {
			out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
			if err != nil {
				return nil, fmt.Errorf("go list -export %s: %w", path, err)
			}
			file = strings.TrimSpace(string(out))
			if file == "" {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			mu.Lock()
			cache[path] = file
			mu.Unlock()
		}
		return os.Open(file)
	}
}

// Load type-checks the fixture package at import path (a directory
// beneath Root), memoizing the result.
func (l *FixtureLoader) Load(path string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load(path)
}

func (l *FixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files", path)
	}
	info := newInfo()
	tcfg := types.Config{
		Importer: &fixtureImporter{loader: l},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := tcfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %w", path, err)
	}
	pkg := &Package{Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// fixtureImporter resolves fixture-local imports from source and
// everything else from export data.
type fixtureImporter struct{ loader *FixtureLoader }

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	l := fi.loader
	if st, err := os.Stat(filepath.Join(l.Root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.Import(path)
}

// A wantExpectation is one `// want "regexp"` assertion.
type wantExpectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

var (
	wantRE    = regexp.MustCompile(`// want((?: "(?:[^"\\]|\\.)*")+)`)
	wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// parseWants extracts want expectations from the fixture's comments.
func parseWants(pkg *Package) ([]*wantExpectation, error) {
	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %w", posn.Filename, posn.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %w", posn.Filename, posn.Line, err)
					}
					wants = append(wants, &wantExpectation{
						file: posn.Filename, line: posn.Line, re: re, text: pat,
					})
				}
			}
		}
	}
	return wants, nil
}

// failure is one mismatch between reported and expected diagnostics.
type failure struct {
	pos  string
	kind string
	text string
}

// CheckFixture runs the analyzers over the fixture package at path and
// matches the surviving diagnostics against the fixture's `// want`
// comments. Every diagnostic must be wanted on its line (pattern
// matched against "rule: message"), and every want must fire. The
// returned failures are empty on success.
func CheckFixture(l *FixtureLoader, path string, analyzers ...*Analyzer) ([]failure, error) {
	pkg, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	wants, err := parseWants(pkg)
	if err != nil {
		return nil, err
	}

	var failures []failure
	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		text := d.Rule + ": " + d.Message
		matched := false
		for _, w := range wants {
			if w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(text) {
				w.met = true
				matched = true
			}
		}
		if !matched {
			failures = append(failures, failure{
				pos:  fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line),
				kind: "unexpected diagnostic",
				text: text,
			})
		}
	}
	for _, w := range wants {
		if !w.met {
			failures = append(failures, failure{
				pos:  fmt.Sprintf("%s:%d", filepath.Base(w.file), w.line),
				kind: "unmatched want",
				text: w.text,
			})
		}
	}
	sort.Slice(failures, func(i, j int) bool {
		if failures[i].pos != failures[j].pos {
			return failures[i].pos < failures[j].pos
		}
		return failures[i].text < failures[j].text
	})
	return failures, nil
}
