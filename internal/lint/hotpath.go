package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotDirective marks a function as a hot-path root: the function and
// everything statically reachable from it (within the package, plus
// cross-package edges proven by AllocatesOnHotPath facts) must not
// allocate. The sim cycle loop and the mesh routing step carry it.
const hotDirective = "//lint:hot"

// AllocatesOnHotPath is the fact hotpath exports for every function
// that allocates, directly or transitively, so the guarantee crosses
// package boundaries: internal/mesh calling an allocating internal/sim
// function from a hot root is a diagnostic in mesh.
type AllocatesOnHotPath struct {
	Reasons []string `json:"reasons"`
}

func (*AllocatesOnHotPath) AFact() {}

func (f *AllocatesOnHotPath) String() string {
	return "AllocatesOnHotPath(" + renderReasons(f.Reasons, 3) + ")"
}

// HotPathAnalyzer is the machine guardrail for the event-kernel speed
// campaign: once a loop is annotated //lint:hot, any allocation that
// later creeps into its reach — a make, an append that can grow, a
// fmt.Sprintf, a value boxed into an interface, a capturing closure —
// is a diagnostic, in this package or (via facts) in any package it
// calls into. Cold failure paths are exempt: arguments to panic are
// not scanned.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc: "forbids allocations (make/new/append growth, fmt.Sprint*, interface " +
		"boxing, closures) reachable from //lint:hot roots, across packages via facts",
	FactTypes: []Fact{(*AllocatesOnHotPath)(nil)},
	Run:       runHotPath,
}

// hpSite is one direct allocation site.
type hpSite struct {
	pos  token.Pos
	desc string
}

// hpCall is one statically resolved call edge.
type hpCall struct {
	pos token.Pos
	obj *types.Func
}

// hpFunc accumulates per-function analysis state.
type hpFunc struct {
	decl      *ast.FuncDecl
	obj       *types.Func
	sites     []hpSite
	calls     []hpCall
	factCalls []hpCall // cross-package calls whose callee carries an AllocatesOnHotPath fact
	allocates bool
	reasons   []string
}

func runHotPath(pass *Pass) error {
	var fns []*hpFunc
	byObj := make(map[*types.Func]*hpFunc)
	for _, fd := range funcsIn(pass.Files) {
		obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		f := &hpFunc{decl: fd, obj: obj}
		f.sites, f.calls = scanHotBody(pass, fd)
		for _, c := range f.calls {
			if c.obj.Pkg() != nil && c.obj.Pkg() != pass.Pkg {
				var fact AllocatesOnHotPath
				if pass.ImportObjectFact(c.obj, &fact) {
					f.factCalls = append(f.factCalls, c)
				}
			}
		}
		fns = append(fns, f)
		byObj[obj] = f
	}

	// Transitive allocation fixpoint over the local call graph, seeded
	// by direct sites and fact-bearing cross-package callees.
	for _, f := range fns {
		for _, s := range f.sites {
			f.allocates = true
			f.reasons = append(f.reasons, s.desc)
		}
		for _, c := range f.factCalls {
			f.allocates = true
			f.reasons = append(f.reasons, "calls "+qualifiedName(c.obj)+" (which allocates)")
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if f.allocates {
				continue
			}
			for _, c := range f.calls {
				if g := byObj[c.obj]; g != nil && g.allocates {
					f.allocates = true
					f.reasons = append(f.reasons, "calls "+objectKey(c.obj)+" (which allocates)")
					changed = true
					break
				}
			}
		}
	}

	// Export facts for every allocating function, so downstream
	// packages see through this one.
	for _, f := range fns {
		if f.allocates {
			pass.ExportObjectFact(f.obj, &AllocatesOnHotPath{Reasons: capReasons(f.reasons, 3)})
		}
	}

	// Mark the hot region: BFS from //lint:hot roots, recording which
	// root reaches each function for the diagnostic message.
	rootVia := make(map[*hpFunc]string)
	var queue []*hpFunc
	for _, f := range fns {
		if isHotRoot(f.decl) {
			rootVia[f] = objectKey(f.obj)
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, c := range f.calls {
			if g := byObj[c.obj]; g != nil {
				if _, seen := rootVia[g]; !seen {
					rootVia[g] = rootVia[f]
					queue = append(queue, g)
				}
			}
		}
	}

	for _, f := range fns {
		root, hot := rootVia[f]
		if !hot {
			continue
		}
		for _, s := range f.sites {
			pass.Reportf(s.pos, "allocation on hot path (rooted at %s): %s", root, s.desc)
		}
		for _, c := range f.factCalls {
			var fact AllocatesOnHotPath
			pass.ImportObjectFact(c.obj, &fact)
			pass.Reportf(c.pos, "hot path (rooted at %s) calls %s, which allocates: %s",
				root, qualifiedName(c.obj), renderReasons(fact.Reasons, 3))
		}
	}
	return nil
}

// isHotRoot reports whether the declaration carries //lint:hot.
func isHotRoot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotDirective || strings.HasPrefix(c.Text, hotDirective+" ") {
			return true
		}
	}
	return false
}

// scanHotBody collects fn's direct allocation sites and resolved call
// edges. Function-literal bodies are not descended into (the literal
// itself is the allocation; when it runs is unknowable), and neither
// are the arguments of panic, which by exit-code policy is a cold
// invariant-violation path.
func scanHotBody(pass *Pass, fn *ast.FuncDecl) (sites []hpSite, calls []hpCall) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sites = append(sites, hpSite{n.Pos(), "func literal (a heap-allocated closure)"})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					sites = append(sites, hpSite{n.Pos(), "&composite literal escapes to the heap"})
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				sites = append(sites, hpSite{n.Pos(), "map literal allocates"})
			case *types.Slice:
				sites = append(sites, hpSite{n.Pos(), "slice literal allocates"})
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "panic":
						return false // cold failure path
					case "append":
						sites = append(sites, hpSite{n.Pos(),
							"append(" + types.ExprString(n.Args[0]) + ", …) may grow the backing array"})
					case "make":
						sites = append(sites, hpSite{n.Pos(),
							"make(" + types.ExprString(n.Args[0]) + ") allocates"})
					case "new":
						sites = append(sites, hpSite{n.Pos(),
							"new(" + types.ExprString(n.Args[0]) + ") allocates"})
					}
					return true
				}
			}
			obj, _ := callee(info, n).(*types.Func)
			if obj == nil {
				return true
			}
			if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
				switch obj.Name() {
				case "Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf", "Append", "Appendln":
					sites = append(sites, hpSite{n.Pos(),
						"fmt." + obj.Name() + " formats with reflection and allocates"})
					return true
				}
			}
			calls = append(calls, hpCall{n.Pos(), obj})
			sites = append(sites, boxingSites(info, n, obj)...)
		}
		return true
	})
	return sites, calls
}

// boxingSites flags concrete non-pointer-shaped arguments passed to
// interface parameters: the conversion heap-allocates the value's box.
// Constants are exempt (the compiler materializes them statically).
func boxingSites(info *types.Info, call *ast.CallExpr, fn *types.Func) []hpSite {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	var sites []hpSite
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a slice passed through ...: no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Value != nil || !boxesOnConversion(tv.Type) {
			continue
		}
		sites = append(sites, hpSite{arg.Pos(),
			types.ExprString(arg) + " boxes into the " + pt.String() + " parameter of " + fn.Name()})
	}
	return sites
}

// boxesOnConversion reports whether converting a value of type t to an
// interface allocates: pointer-shaped types (pointers, channels, maps,
// funcs) fit the interface word; everything else is copied to the heap.
func boxesOnConversion(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Info()&types.IsUntyped == 0
	}
	return true
}

// qualifiedName renders obj as pkg.F or pkg.T.M for diagnostics.
func qualifiedName(obj *types.Func) string {
	if obj.Pkg() == nil {
		return objectKey(obj)
	}
	return obj.Pkg().Name() + "." + objectKey(obj)
}

// capReasons bounds a reason list for fact serialization, keeping the
// vetx payload and downstream messages stable and small.
func capReasons(reasons []string, max int) []string {
	if len(reasons) <= max {
		return reasons
	}
	return append(reasons[:max:max], "…")
}
