package lint

import (
	"fmt"
	"go/format"
	"go/token"
	"sort"
)

// A TextEdit replaces the source bytes in [Pos, End) with NewText. A
// pure insertion has Pos == End; a pure deletion has empty NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// A SuggestedFix is one self-contained, automatically applicable
// resolution for a diagnostic: a set of edits that, applied together,
// make the diagnostic disappear. Fixes must be conservative — applying
// one may never change program behavior beyond what its message says.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// fixEdit is a TextEdit resolved to byte offsets within one file.
type fixEdit struct {
	file       string
	start, end int
	newText    string
}

// ApplyFixes computes the post-fix contents of every file touched by
// the diagnostics' suggested fixes. Each diagnostic contributes its
// first fix; overlapping edits are dropped deterministically (earliest
// start wins) so a partially fixable file still converges over repeated
// runs. Deletions that leave a line blank are widened to remove the
// whole line, and every rewritten file is re-formatted with gofmt.
//
// read supplies the current contents of a file (typically os.ReadFile);
// the caller decides what to do with the returned map, which lets the
// golden-file tests apply fixes without writing to the fixture tree.
// The int result counts the edits actually applied.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, read func(string) ([]byte, error)) (map[string][]byte, int, error) {
	byFile := make(map[string][]fixEdit)
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		for _, e := range d.Fixes[0].Edits {
			if !e.Pos.IsValid() || e.End < e.Pos {
				return nil, 0, fmt.Errorf("invalid text edit in fix %q", d.Fixes[0].Message)
			}
			start := fset.Position(e.Pos)
			end := fset.Position(e.End)
			if end.Filename != start.Filename {
				return nil, 0, fmt.Errorf("fix %q spans files %s and %s", d.Fixes[0].Message, start.Filename, end.Filename)
			}
			byFile[start.Filename] = append(byFile[start.Filename], fixEdit{
				file: start.Filename, start: start.Offset, end: end.Offset, newText: e.NewText,
			})
		}
	}
	if len(byFile) == 0 {
		return nil, 0, nil
	}

	out := make(map[string][]byte, len(byFile))
	applied := 0
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		src, err := read(file)
		if err != nil {
			return nil, 0, err
		}
		edits := byFile[file]
		for i := range edits {
			edits[i] = widenLineDeletion(src, edits[i])
		}
		sort.SliceStable(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start < edits[j].start
			}
			return edits[i].end < edits[j].end
		})
		var buf []byte
		prev := 0
		for _, e := range edits {
			if e.start < prev || e.end > len(src) {
				continue // overlaps an already-applied edit (or is stale); skip
			}
			buf = append(buf, src[prev:e.start]...)
			buf = append(buf, e.newText...)
			prev = e.end
			applied++
		}
		buf = append(buf, src[prev:]...)
		formatted, err := format.Source(buf)
		if err != nil {
			return nil, 0, fmt.Errorf("fixes to %s do not format: %w", file, err)
		}
		out[file] = formatted
	}
	return out, applied, nil
}

// widenLineDeletion grows a pure deletion to cover its whole line
// (including the trailing newline) when the bytes it would leave behind
// on that line are only whitespace — deleting a full-line comment must
// not leave a blank line for gofmt to preserve.
func widenLineDeletion(src []byte, e fixEdit) fixEdit {
	if e.newText != "" || e.start == e.end || e.end > len(src) {
		return e
	}
	ls := e.start
	for ls > 0 && src[ls-1] != '\n' {
		ls--
	}
	le := e.end
	for le < len(src) && src[le] != '\n' {
		le++
	}
	for _, b := range src[ls:e.start] {
		if b != ' ' && b != '\t' {
			return e
		}
	}
	for _, b := range src[e.end:le] {
		if b != ' ' && b != '\t' {
			return e
		}
	}
	if le < len(src) {
		le++ // swallow the newline
	}
	e.start, e.end = ls, le
	return e
}
