// Package pipeline exercises the errtaxonomy analyzer: errors crossing
// the pipeline boundary must stay inspectable by errors.Is/As so the
// resilience taxonomy can classify them.
package pipeline

import (
	"errors"
	"fmt"
)

// Bad: %v flattens the cause to a string.
func wrapV(err error) error {
	return fmt.Errorf("stage failed: %v", err) // want "errtaxonomy: error value formatted with %v/%s in fmt.Errorf"
}

// Bad: %s is the same severed chain with different spelling.
func wrapS(err error) error {
	return fmt.Errorf("acquire %s: %s", "fft", err) // want "errtaxonomy: error value formatted with %v/%s in fmt.Errorf"
}

// Bad: stringifying explicitly before formatting evades the verb check
// but not the Error() check.
func wrapString(err error) error {
	return fmt.Errorf("stage failed: " + err.Error()) // want "errtaxonomy: err.Error\\(\\) inside fmt.Errorf flattens the error chain"
}

// Bad: errors.New over a flattened cause.
func newString(err error) error {
	return errors.New("stage failed: " + err.Error()) // want "errtaxonomy: err.Error\\(\\) inside errors.New flattens the error chain"
}

// Good: %w keeps the cause reachable.
func wrapW(err error) error {
	return fmt.Errorf("stage failed: %w", err)
}

// Good: formatting non-error values with %v is unrestricted.
func describe(n int, name string) error {
	return fmt.Errorf("spec %d (%v): invalid", n, name)
}
