// Package dist exercises the errtaxonomy analyzer over the distributed
// layer's shapes: worker-side failures are classified by the resilience
// taxonomy before crossing the wire, so a stringified wrap breaks
// failover on both sides of the RPC.
package dist

import (
	"errors"
	"fmt"
)

// Bad: %v severs the chain before Classify can see a refused connection.
func leaseError(err error) error {
	return fmt.Errorf("lease poll failed: %v", err) // want "errtaxonomy: error value formatted with %v/%s in fmt.Errorf"
}

// Bad: %s is the same severed chain with different spelling.
func heartbeatError(worker string, err error) error {
	return fmt.Errorf("worker %s heartbeat: %s", worker, err) // want "errtaxonomy: error value formatted with %v/%s in fmt.Errorf"
}

// Bad: stringifying explicitly before formatting evades the verb check
// but not the Error() check.
func completeError(err error) error {
	return fmt.Errorf("artifact upload: " + err.Error()) // want "errtaxonomy: err.Error\\(\\) inside fmt.Errorf flattens the error chain"
}

// Bad: errors.New over a flattened cause.
func attachError(err error) error {
	return errors.New("attach rejected: " + err.Error()) // want "errtaxonomy: err.Error\\(\\) inside errors.New flattens the error chain"
}

// Good: %w keeps a transport failure classifiable as transient.
func pollError(err error) error {
	return fmt.Errorf("dist: lease poll: %w", err)
}

// Good: a failure report's Error field is already a plain string on the
// wire; formatting strings with %s is unrestricted.
func remoteFailure(spec, worker, msg string) error {
	return fmt.Errorf("dist: spec %s failed on worker %s: %s", spec, worker, msg)
}
