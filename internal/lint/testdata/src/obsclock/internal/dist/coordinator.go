// Package dist exercises the determinism analyzer's clocked-package
// scope over the distributed sweep layer: every lease, expiry, and
// speculation decision must be made against an injected Clock — a bare
// time.Now would make straggler hedging untestable and lease-expiry
// races schedule-dependent. Real tickers that merely pace loops are
// fine, but only behind an explicit //lint:allow.
package dist

import "time"

// clock mirrors obs.Clock; the fixture keeps it local so the package
// type-checks standalone.
type clock interface {
	Now() time.Time
}

// Bad: a lease deadline computed from the host clock directly.
func deadlineDirect(lease time.Duration) time.Time {
	return time.Now().Add(lease) // want "determinism: wall-clock time.Now outside obs.Clock"
}

// Bad: waiting out a lease with a host sleep.
func waitOut(lease time.Duration) {
	time.Sleep(lease) // want "determinism: wall-clock time.Sleep outside obs.Clock"
}

// Bad: an un-justified real ticker — pacing is allowed, but only with an
// explicit //lint:allow stating why the Clock seam does not cover it.
func sweepLoop(stop chan struct{}) {
	tick := time.NewTicker(time.Second) // want "determinism: wall-clock time.NewTicker outside obs.Clock"
	defer tick.Stop()
	<-stop
}

// Good: decisions read the injected clock (method calls are exempt), so
// a fake clock drives expiry and hedging deterministically in tests.
func expired(c clock, deadline time.Time) bool {
	return !c.Now().Before(deadline)
}

// Good: a real ticker pacing the expiry sweep, justified by an allow —
// every decision the tick triggers still goes through the clock.
func pacedSweep(c clock, stop chan struct{}, expire func(time.Time)) {
	//lint:allow determinism the expiry sweep needs a real ticker; decisions go through the injected clock
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			expire(c.Now())
		}
	}
}
