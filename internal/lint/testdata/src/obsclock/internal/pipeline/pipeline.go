// Package pipeline exercises the determinism analyzer's clocked-package
// scope outside internal/obs itself: the engine may time its stages only
// against an injected Clock, never the host clock directly — a bare
// time.Now would make traced exports unreproducible under a fake clock.
package pipeline

import "time"

// clock mirrors obs.Clock; the fixture keeps it local so the package
// type-checks standalone.
type clock interface {
	Now() time.Time
}

// Bad: times a stage against the host clock directly.
func stageDirect(run func()) time.Duration {
	start := time.Now() // want "determinism: wall-clock time.Now outside obs.Clock"
	run()
	return time.Since(start) // want "determinism: wall-clock time.Since outside obs.Clock"
}

// Good: the stage is timed against the injected clock, so a fake clock
// reproduces the measurement byte for byte.
func stage(c clock, run func()) time.Duration {
	start := c.Now()
	run()
	return c.Now().Sub(start)
}
