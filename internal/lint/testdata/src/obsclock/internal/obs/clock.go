// Package obs exercises the determinism analyzer's clocked-package
// scope: internal/obs is the sanctioned home of wall-clock reads, but
// only through the Clock seam — the real-clock shim carries the one
// justified //lint:allow; any other bare time.* read is a diagnostic.
package obs

import "time"

// Clock abstracts wall-clock reads.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

// Good: the single sanctioned real-clock shim, suppressed by an allow
// (which must therefore not be reported as stale).
func (systemClock) Now() time.Time {
	//lint:allow determinism the one sanctioned wall-clock read behind the Clock seam
	return time.Now()
}

// Bad: a bare host-clock read bypassing the Clock seam.
func stampDirect() int64 {
	return time.Now().UnixNano() // want "determinism: wall-clock time.Now outside obs.Clock"
}

// Bad: host sleeps are just as schedule-dependent as reads.
func settle() {
	time.Sleep(time.Millisecond) // want "determinism: wall-clock time.Sleep outside obs.Clock"
}

// Good: reading through an injected Clock is the sanctioned path
// (method calls are exempt), and Duration arithmetic never touches the
// host clock.
func stamp(c Clock) int64 {
	return c.Now().Add(time.Millisecond).UnixNano()
}
