// Package obs is the obsconv declaring-side fixture: nil-receiver
// safety of exported pointer-receiver methods, with NilSafe facts for
// the types that uphold it.
package obs

// Observer fans events out to sinks; nil observers are no-ops.
type Observer struct{ events int } // want fact:"Observer: NilSafe"

// Emit counts one event.
func (o *Observer) Emit() {
	if o == nil {
		return
	}
	o.events++
}

// Registry registers metrics.
type Registry struct{ names []string } // want fact:"Registry: NilSafe"

// register funnels every exported registration through one guard.
func (r *Registry) register(name string) {
	if r == nil {
		return
	}
	r.names = append(r.names, name)
}

// Counter registers a monotonically increasing metric.
func (r *Registry) Counter(name, help string) { r.register(name) }

// Gauge registers an instantaneous metric.
func (r *Registry) Gauge(name, help string) { r.register(name) }

// Histogram registers a distribution metric.
func (r *Registry) Histogram(name, help string) { r.register(name) }

// CounterVecFunc registers a labeled counter family.
func (r *Registry) CounterVecFunc(name, help, label string, f func() map[string]int64) {
	r.register(name)
}

// Tracer opens spans; it predates the nil-safety rule.
type Tracer struct{ spans int }

// Begin opens a span.
func (t *Tracer) Begin() { // want "obsconv: exported method \\(\\*Tracer\\).Begin dereferences its receiver without a nil guard"
	t.spans++
}

// Flusher drains buffers.
type Flusher struct{ pending int }

// Flush drains the buffer.
//
//lint:allow obsconv the flusher is constructed unconditionally in main and is never nil
func (f *Flusher) Flush() {
	f.pending = 0
}
