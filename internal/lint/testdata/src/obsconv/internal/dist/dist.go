// Package dist is the obsconv consuming-side fixture: metric naming at
// Registry call sites and redundant nil guards around calls to types
// whose NilSafe fact crossed the package boundary.
package dist

import "obsconv/internal/obs"

// Register wires up the sweep metrics.
func Register(r *obs.Registry, shard string) {
	r.Counter("commchar_dist_leases_total", "leases granted")
	r.Counter("commchar_dist_renewals", "lease renewals") // want "obsconv: counter \"commchar_dist_renewals\" must end in _total"
	r.Gauge("commcharDistDepth", "queue depth")           // want "obsconv: metric name \"commcharDistDepth\" violates the commchar_\\* snake_case convention"
	r.Histogram("commchar_dist_latency_seconds", "lease latency")
	r.Counter("commchar_dist_"+shard+"_total", "per-shard grants")
	r.Gauge(shard+"_depth", "per-shard depth") // want "obsconv: dynamic metric name in Gauge"
	r.CounterVecFunc("commchar_dist_by_worker_total", "per-worker grants", shard, nil) // want "obsconv: dynamic label name in CounterVecFunc"
}

// Legacy keeps a pre-convention name until the dashboards migrate.
func Legacy(r *obs.Registry) {
	//lint:allow obsconv the legacy dashboard still queries this name; migrating next release
	r.Counter("legacy_hits", "hits on the legacy endpoint")
}

// Emit forwards to the observer, guarding out of habit.
func Emit(o *obs.Observer) {
	if o != nil { // want "obsconv: redundant nil guard: \\*Observer is nil-safe"
		o.Emit()
	}
}

// EmitRight trusts the seam.
func EmitRight(o *obs.Observer) {
	o.Emit()
}

// Reset guards and does extra work: the guard is load-bearing here.
func Reset(o *obs.Observer, n *int) {
	if o != nil {
		o.Emit()
		*n = 0
	}
}
