// Package sweep is the fix-engine golden fixture for leakcheck: a
// forgotten ticker gains a deferred Stop.
package sweep

import "time"

// Wait blocks for one tick.
func Wait(d time.Duration) {
	tick := time.NewTicker(d)
	<-tick.C
}
