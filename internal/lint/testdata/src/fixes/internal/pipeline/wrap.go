// Package pipeline is the fix-engine golden fixture for errtaxonomy
// and the allow meta-rule: %v on an error value becomes %w, and a
// stale //lint:allow comment is deleted.
package pipeline

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

// Wrap stringifies its cause; -fix rewrites the verb to %w.
func Wrap(key string) error {
	return fmt.Errorf("load %s: %v", key, errBase)
}

//lint:allow errtaxonomy stale: the diagnostic it once suppressed is gone

// Clean already wraps.
func Clean() error {
	return fmt.Errorf("ok: %w", errBase)
}
