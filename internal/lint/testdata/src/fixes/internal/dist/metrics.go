// Package dist is the fix-engine golden fixture for obsconv: metric
// names are renamed to convention and a redundant nil guard around a
// NilSafe type (fact imported from obsconv/internal/obs) is dropped.
package dist

import "obsconv/internal/obs"

// Register wires up the sweep metrics.
func Register(r *obs.Registry) {
	r.Counter("commchar_dist_renewals", "lease renewals")
	r.Gauge("commcharDistDepth", "queue depth")
}

// Emit forwards to the observer.
func Emit(o *obs.Observer) {
	if o != nil {
		o.Emit()
	}
}
