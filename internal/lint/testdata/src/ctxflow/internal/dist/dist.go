// Package dist exercises the ctxflow analyzer over the distributed
// layer's shapes: poll and heartbeat loops run until a remote process
// says stop, so every exported entry point that loops or touches the
// filesystem must be reachable by the caller's cancellation.
package dist

import (
	"context"
	"os"
)

// Worker is an exported type, so its exported methods are API.
type Worker struct{ done bool }

// Bad: a poll loop with no ctx parameter — an unreachable coordinator
// would pin this worker forever.
func (w *Worker) Poll(coordinator string) { // want "ctxflow: exported Poll contains a condition-only loop but takes no context.Context"
	for !w.done {
		w.leaseOnce(coordinator)
	}
}

// Bad: a heartbeat spin, even with a break, is condition-only.
func Heartbeat(alive func() bool) { // want "ctxflow: exported Heartbeat contains a condition-only loop but takes no context.Context"
	for {
		if !alive() {
			break
		}
	}
}

// Bad: artifact spooling is filesystem I/O with no ctx parameter.
func SpoolArtifact(path string, data []byte) error { // want "ctxflow: exported SpoolArtifact contains filesystem I/O \\(os.WriteFile\\) but takes no context.Context"
	return os.WriteFile(path, data, 0o644)
}

// Bad: library code must not mint a fresh root; the worker would keep
// polling after the sweep's context was cut.
func (w *Worker) leaseOnce(coordinator string) {
	ctx := context.Background() // want "ctxflow: context.Background mints a fresh root in a library package"
	_ = ctx
	_ = coordinator
}

// Good: the ctx-accepting poll loop.
func (w *Worker) PollContext(ctx context.Context, coordinator string) {
	for !w.done {
		select {
		case <-ctx.Done():
			return
		default:
		}
		_ = coordinator
	}
}

// Good: iterating a bounded lease table is input-bounded work.
func CountPending(states []string) int {
	pending := 0
	for _, s := range states {
		if s == "pending" {
			pending++
		}
	}
	return pending
}
