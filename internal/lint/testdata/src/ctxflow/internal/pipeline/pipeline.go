// Package pipeline exercises the ctxflow analyzer: exported entry
// points here sit on the run-pipeline path, so unbounded work must be
// reachable by the caller's cancellation.
package pipeline

import (
	"context"
	"os"
)

// Engine is an exported type, so its exported methods are API.
type Engine struct{ stop bool }

// Bad: a condition-only loop with no ctx parameter — the replay-loop
// shape that runs until the simulation decides to stop.
func (e *Engine) Drain() { // want "ctxflow: exported Drain contains a condition-only loop but takes no context.Context"
	for !e.stop {
		e.step()
	}
}

// Bad: filesystem I/O with no ctx parameter.
func Load(path string) ([]byte, error) { // want "ctxflow: exported Load contains filesystem I/O \\(os.ReadFile\\) but takes no context.Context"
	return os.ReadFile(path)
}

// Bad: an exported spin loop, even with a break, is condition-only.
func Wait(ready func() bool) { // want "ctxflow: exported Wait contains a condition-only loop but takes no context.Context"
	for {
		if ready() {
			break
		}
	}
}

// Bad: library code must not mint a fresh root; it silently detaches
// callees from the caller's cancellation.
func (e *Engine) step() {
	ctx := context.Background() // want "ctxflow: context.Background mints a fresh root in a library package"
	_ = ctx
}

// Good: the ctx-accepting variant of the same loop.
func (e *Engine) DrainContext(ctx context.Context) {
	for !e.stop {
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}

// Good: three-clause and range loops are bounded by their inputs.
func Sum(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	for _, x := range xs {
		total += x
	}
	return total
}

// Good: unexported helpers are not API surface for this rule.
func drainQuietly(e *Engine) {
	for !e.stop {
	}
}
