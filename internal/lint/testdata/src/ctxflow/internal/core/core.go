// Package core exercises the ctxflow analyzer over the topology-sizing
// idiom: internal/core is an entry package, so an exported shape search
// that loops until a fabric fits must stay reachable by cancellation.
package core

import "context"

// Bad: an exported fabric search with a condition-only growth loop and
// no ctx parameter.
func GrowFabric(procs int) int { // want "ctxflow: exported GrowFabric contains a condition-only loop but takes no context.Context"
	k := 2
	for k*k < procs {
		k++
	}
	return k
}

// Good: the cancellable variant threads the caller's context.
func GrowFabricContext(ctx context.Context, procs int) (int, error) {
	k := 2
	for k*k < procs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		k++
	}
	return k, nil
}

// Good: unexported sizing helpers may loop freely — bounding them is
// the exported entry point's job.
func grow(procs int) int {
	k := 2
	for k*k < procs {
		k++
	}
	return k
}

// Good: a three-clause counting loop is bounded by its inputs; deriving
// the smallest k-ary shape this way needs no context.
func Shape(n, procs int) []int {
	dims := make([]int, 0, n)
	for i := 0; i < n; i++ {
		dims = append(dims, procs)
	}
	return dims
}
