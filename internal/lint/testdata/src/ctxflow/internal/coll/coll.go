// Package coll exercises the ctxflow analyzer over the collective
// extractor: internal/coll is an entry package, so an exported analysis
// pass that drains arrival queues until empty, or spools a timeline to
// disk, must stay reachable by cancellation. The shipped extractor uses
// only range and counted loops — these fixtures pin the boundary it
// must not cross.
package coll

import (
	"context"
	"os"
)

// Bad: an exported drain with a condition-only loop and no ctx — a
// malformed log would spin it forever with no way to stop the run.
func DrainQueues(pending []int) int { // want "ctxflow: exported DrainQueues contains a condition-only loop but takes no context.Context"
	drained := 0
	for len(pending) > 0 {
		pending = pending[1:]
		drained++
	}
	return drained
}

// Bad: exported timeline export touches the filesystem without a ctx.
func SpoolTimeline(path string, rows []byte) error { // want "ctxflow: exported SpoolTimeline contains filesystem I/O \\(os.WriteFile\\) but takes no context.Context"
	return os.WriteFile(path, rows, 0o644)
}

// Good: the cancellable variant threads the caller's context.
func DrainQueuesContext(ctx context.Context, pending []int) (int, error) {
	drained := 0
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return drained, err
		}
		pending = pending[1:]
		drained++
	}
	return drained, nil
}

// Good: range and counted loops are bounded by the delivery log — the
// shapes the real extractor is built from need no context.
func AttributeMessages(tags []int) map[int]int {
	byBlock := make(map[int]int)
	for _, t := range tags {
		byBlock[t] += 1
	}
	return byBlock
}

// Good: unexported walkers may loop freely — bounding them is the
// exported entry point's job.
func drain(pending []int) int {
	drained := 0
	for len(pending) > 0 {
		pending = pending[1:]
		drained++
	}
	return drained
}
