// Package store is the lockorder declaring-side fixture: Publish
// blocks on a channel send, and the Blocking fact must follow it into
// importing packages.
package store

// Publish pushes the blob to every subscriber, blocking until the
// subscriber drains it.
func Publish(ch chan []byte, b []byte) { // want fact:"Publish: Blocking\\(sends on a channel\\)"
	ch <- b
}
