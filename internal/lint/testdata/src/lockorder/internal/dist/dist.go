// Package dist is the lockorder consuming-side fixture, modeled on the
// coordinator's lease table: inconsistent acquisition order, sends and
// HTTP round-trips under a lock, self-deadlocking re-acquisition, and
// a cross-package Blocking fact.
package dist

import (
	"net/http"
	"sync"

	"lockorder/internal/store"
)

// Coordinator guards the lease table with two mutexes.
type Coordinator struct {
	mu     sync.Mutex
	tables sync.Mutex
	leases map[string]int
	ch     chan string
}

// Renew takes mu then tables: the canonical order.
func (c *Coordinator) Renew(id string) {
	c.mu.Lock()
	c.tables.Lock()
	c.leases[id]++
	c.tables.Unlock()
	c.mu.Unlock()
}

// Expire takes the same pair in the opposite order.
func (c *Coordinator) Expire(id string) {
	c.tables.Lock()
	c.mu.Lock() // want "lockorder: inconsistent lock order: Coordinator.mu and Coordinator.tables are acquired in both orders"
	delete(c.leases, id)
	c.mu.Unlock()
	c.tables.Unlock()
}

// Notify sends while still holding the lease lock.
func (c *Coordinator) Notify(id string) {
	c.mu.Lock()
	c.ch <- id // want "lockorder: sends on a channel while holding Coordinator.mu"
	c.mu.Unlock()
}

// NotifyRight releases before sending.
func (c *Coordinator) NotifyRight(id string) {
	c.mu.Lock()
	c.mu.Unlock()
	c.ch <- id
}

// Drop holds mu for its whole body via the deferred unlock.
func (c *Coordinator) Drop(id string) { // want fact:"Coordinator.Drop: AcquiresLocks\\(Coordinator.mu\\)"
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.leases, id)
}

// Sweep calls Drop with mu already held.
func (c *Coordinator) Sweep() {
	c.mu.Lock()
	c.Drop("expired") // want "lockorder: call to dist.Coordinator.Drop re-acquires Coordinator.mu, which is already held here \\(self-deadlock\\)"
	c.mu.Unlock()
}

// Flush publishes under the lock; Publish's Blocking fact crossed the
// package boundary.
func (c *Coordinator) Flush(ch chan []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	store.Publish(ch, nil) // want "lockorder: call to store.Publish while holding Coordinator.mu: it sends on a channel"
}

// Audit also publishes under the lock, deliberately: the audit channel
// is buffered and drained by the same goroutine.
func (c *Coordinator) Audit(ch chan []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow lockorder the audit channel is buffered and drained by this goroutine
	store.Publish(ch, nil)
}

// Refresh performs a round-trip while holding the lease lock.
func (c *Coordinator) Refresh(cl *http.Client, url string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := cl.Get(url) // want "lockorder: performs an HTTP round-trip \\(net/http.Get\\) while holding Coordinator.mu"
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Watch sends from a dedicated goroutine; the closure is its own
// scope, so the send is not charged to Watch's held set.
func (c *Coordinator) Watch(id string) {
	c.mu.Lock()
	go func() {
		c.ch <- id
	}()
	c.mu.Unlock()
}
