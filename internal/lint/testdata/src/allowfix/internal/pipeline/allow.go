// Package pipeline exercises the //lint:allow suppression mechanism:
// a justified allow silences exactly the named rule on its own line or
// the line below, unknown rule names are themselves diagnostics, and
// stale allows are reported.
package pipeline

import "fmt"

// Good: a justified allow on the line above suppresses the named rule
// on the next line — and nothing else.
func allowedAbove(err error) error {
	//lint:allow errtaxonomy the CLI prints this flat by design
	return fmt.Errorf("flat: %v", err)
}

// Good: a trailing allow suppresses its own line.
func allowedTrailing(err error) error {
	return fmt.Errorf("flat: %v", err) //lint:allow errtaxonomy flat by design for the usage banner
}

// Bad: an unknown rule name is itself a diagnostic, and it suppresses
// nothing, so the violation underneath still fires.
func unknownRule(err error) error {
	//lint:allow errtaxnomy typo'd rule name // want "allow: unknown rule \"errtaxnomy\" in //lint:allow"
	return fmt.Errorf("flat: %v", err) // want "errtaxonomy: error value formatted with %v/%s in fmt.Errorf"
}

// Bad: an allow that suppresses nothing is stale and must be removed,
// not left to rot into a blanket exemption.
func stale(err error) error {
	//lint:allow errtaxonomy nothing below trips the rule // want "allow: stale //lint:allow errtaxonomy"
	return fmt.Errorf("ok: %w", err)
}

// Good: an allow naming a rule that did not run in this pass is left
// alone — a single-analyzer run must not flag allows aimed at the
// other rules.
func otherRule(err error) error {
	//lint:allow ctxflow justified for a rule this fixture pass does not run
	return fmt.Errorf("ok: %w", err)
}

// Good: an allow only reaches one line; two lines down it no longer
// suppresses, which keeps allows from growing into block exemptions.
func outOfReach(err error) error {
	//lint:allow errtaxonomy reaches only the next line // want "allow: stale //lint:allow errtaxonomy"
	_ = err
	return fmt.Errorf("flat: %v", err) // want "errtaxonomy: error value formatted with %v/%s in fmt.Errorf"
}
