// Package dist is the leakcheck consuming-side fixture: ticker and
// timer lifecycles, goroutines without a cancellation path (local and
// proven cross-package via facts), and constructor handles that must
// be released or handed off.
package dist

import (
	"context"
	"time"

	"leakcheck/internal/obs"
)

// pump is cancellable by contract: it takes a context.
func pump(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}

// Spin loops forever with no way for shutdown to reach it.
func Spin() { // want fact:"Spin: UncancellableLoop"
	n := 0
	for {
		n++
	}
}

// StartAll launches the worker set.
func StartAll(ctx context.Context) {
	go pump(ctx)
	go Spin()     // want "leakcheck: go Spin starts a loop with no cancellation path"
	go obs.Pump() // want "leakcheck: go obs.Pump starts a loop with no cancellation path \\(proven in leakcheck/internal/obs\\)"
	go func() {   // want "leakcheck: goroutine loops forever with no cancellation path"
		for {
		}
	}()
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Background deliberately leaks: the poller lives for the process.
func Background() {
	//lint:allow leakcheck the poller runs for the whole process lifetime by design
	go Spin()
}

// Poll exposes an unstoppable ticker channel.
func Poll() <-chan time.Time {
	return time.Tick(time.Second) // want "leakcheck: time.Tick leaks its ticker"
}

// Wait forgets to stop its ticker.
func Wait(d time.Duration) {
	tick := time.NewTicker(d) // want "leakcheck: time.NewTicker never stops tick"
	<-tick.C
}

// WaitRight stops it.
func WaitRight(d time.Duration) {
	tick := time.NewTicker(d)
	defer tick.Stop()
	<-tick.C
}

// Share hands the ticker to the caller: ownership moves with it.
func Share(d time.Duration) *time.Ticker {
	tick := time.NewTicker(d)
	return tick
}

// Probe drops the handle on the floor.
func Probe() {
	obs.StartServer() // want "leakcheck: result of obs.StartServer is a handle but is discarded"
}

// Leak keeps the handle but never releases it.
func Leak() {
	srv := obs.StartServer() // want "leakcheck: srv returned by obs.StartServer is never released and never escapes"
	srv.Ping()
}

// Good releases its handle.
func Good() {
	srv := obs.StartServer()
	defer srv.Close()
	srv.Ping()
}

// Handoff transfers ownership to the caller.
func Handoff() *obs.Server {
	return obs.StartServer()
}
