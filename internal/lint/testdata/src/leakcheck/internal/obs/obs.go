// Package obs is the leakcheck declaring-side fixture: a constructor
// whose Handle fact and an eternal loop whose UncancellableLoop fact
// must cross into importing packages.
package obs

// Server is a debug endpoint handle.
type Server struct{ closed bool }

// Ping probes the endpoint.
func (s *Server) Ping() {}

// Close releases the listener.
func (s *Server) Close() { s.closed = true }

// StartServer starts the debug endpoint; the caller owns the handle.
func StartServer() *Server { // want fact:"StartServer: Handle\\(release with Close\\)"
	return &Server{}
}

// Pump drains the internal queue for the life of the process.
func Pump() { // want fact:"Pump: UncancellableLoop"
	for {
	}
}
