// Package pipeline holds the allow comments whose meta-diagnostics
// cannot carry inline `// want` expectations (the expectation text
// would become the allow's justification); allow_test.go asserts on
// them programmatically.
package pipeline

import "fmt"

// A bare marker with no rule name is malformed.
func malformed(err error) error {
	//lint:allow
	return fmt.Errorf("flat: %w", err)
}

// A rule with no justification still suppresses — the suppression must
// not silently vanish under an unrelated complaint — but is reported.
func noReason(err error) error {
	//lint:allow errtaxonomy
	return fmt.Errorf("flat: %v", err)
}
