// Package cli is the one library package allowed to exit: it owns the
// typed exit-code contract, so nothing here is a diagnostic.
package cli

import (
	"log"
	"os"
)

// Exit maps a classified failure onto the typed exit-code contract.
func Exit(code int) {
	os.Exit(code)
}

// Die is permitted here and only here.
func Die(msg string) {
	log.Fatal(msg)
}
