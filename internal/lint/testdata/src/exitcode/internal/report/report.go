// Package report exercises the exitcode analyzer inside a boundary
// package: failures here must surface as classified error values, never
// as process exits or panics.
package report

import (
	"log"
	"os"
)

// Bad: an untyped exit skips deferred journal/cache cleanup.
func bail() {
	os.Exit(3) // want "exitcode: os.Exit bypasses the typed exit-code contract"
}

// Bad: the log.Fatal family exits with status 1 regardless of cause.
func fatal(msg string) {
	log.Fatalf("report: %s", msg) // want "exitcode: log.Fatalf exits with an untyped status"
}

// Bad: same for the unformatted variant.
func fatalPlain() {
	log.Fatal("report failed") // want "exitcode: log.Fatal exits with an untyped status"
}

// Bad: a panic crossing the pipeline boundary defeats resilience.Classify.
func mustPositive(n int) int {
	if n <= 0 {
		panic("n must be positive") // want "exitcode: panic crosses the pipeline error boundary"
	}
	return n
}

// Good: returning an error keeps the exit-code contract intact.
func checked(n int) (int, error) {
	if n <= 0 {
		return 0, errNonPositive
	}
	return n, nil
}

type reportError string

func (e reportError) Error() string { return string(e) }

var errNonPositive = reportError("report: n must be positive")
