// Command tool exercises the exitcode analyzer's main-package rules:
// func main may exit directly, every other function must return errors.
package main

import (
	"fmt"
	"os"
)

// Good: func main is the one place a main package may exit.
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	return nil
}

// Bad: helpers in a main package must not exit on their own.
func helperExit() {
	os.Exit(2) // want "exitcode: os.Exit bypasses the typed exit-code contract"
}

// Bad: nor may they panic across the boundary.
func helperPanic() {
	panic("unreachable") // want "exitcode: panic crosses the pipeline error boundary"
}
