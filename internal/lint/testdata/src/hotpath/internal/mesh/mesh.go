// Package mesh is the hotpath consuming-side fixture: its hot root
// never allocates directly, but reaches sim.Schedule — whose
// AllocatesOnHotPath fact crossed the package boundary — through a
// local helper.
package mesh

import "hotpath/internal/sim"

var queue []*sim.Event

// route is the per-flit routing step.
//
//lint:hot
func route(dst int) int {
	if len(queue) == 0 {
		refill()
	}
	return dst ^ len(queue)
}

// refill is reached from route, so the imported fact fires here.
func refill() {
	queue = sim.Schedule(16) // want "hotpath: hot path \\(rooted at route\\) calls sim.Schedule, which allocates"
}

// Prime is the sanctioned call site: warm-up happens before the clock
// starts, so Schedule's allocations never land on the hot path.
func Prime(n int) {
	queue = sim.Schedule(n)
}

// drain refills mid-run, but deliberately: once per epoch.
//
//lint:hot
func drain() {
	//lint:allow hotpath one refill per epoch, amortized across the whole sweep
	queue = sim.Schedule(4)
}
