// Package sim is the hotpath declaring-side fixture: a //lint:hot root
// whose reachable allocations are diagnostics, a cold constructor whose
// allocations become an exported fact, and an allowed warm-up append.
package sim

import "fmt"

// Event is one scheduled simulator event.
type Event struct {
	ID       int64
	deadline int
}

var trace []string

// Step drains the queue one event at a time: the cycle-loop kernel.
//
//lint:hot
func Step(events []*Event) int {
	n := 0
	for _, e := range events {
		n += fire(e)
	}
	return n
}

// fire is reached from Step, so its allocations are hot.
func fire(e *Event) int {
	if e.deadline < 0 {
		// Arguments to panic are a cold invariant-violation path: no
		// diagnostic even though Sprintf allocates.
		panic(fmt.Sprintf("negative deadline %d", e.deadline))
	}
	msg := fmt.Sprintf("ev%d", e.ID) // want "hotpath: allocation on hot path \\(rooted at Step\\): fmt.Sprintf formats with reflection"
	trace = append(trace, msg)       // want "hotpath: allocation on hot path \\(rooted at Step\\): append\\(trace, …\\) may grow the backing array"
	sink(e.deadline)                 // want "hotpath: allocation on hot path .* boxes into the .* parameter of sink"
	return len(msg)
}

// sink observes a value through an interface, boxing it.
func sink(v any) { _ = v }

// Schedule allocates the queue. Off the hot path that is fine — no
// diagnostic — but the fact follows it into every importing package.
func Schedule(n int) []*Event { // want fact:"Schedule: AllocatesOnHotPath"
	out := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &Event{ID: int64(i)})
	}
	return out
}

var buf []*Event

// Flush batches events into the reusable flush buffer.
//
//lint:hot
func Flush(events []*Event) {
	//lint:allow hotpath the flush buffer is reused and only grows during warm-up
	buf = append(buf, events...)
}
