// Package a exercises the determinism analyzer's map-iteration and
// sort-comparator checks, which apply to every package in the module.
package a

import (
	"fmt"
	"sort"
)

type item struct {
	Key  string
	Prio int
}

// Bad: iteration order escapes straight into the output stream; no
// later sort can repair it.
func printMap(m map[string]int) {
	for k, v := range m { // want "determinism: map iteration order reaches fmt.Println directly"
		fmt.Println(k, v)
	}
}

// Bad: the keys collected from the map are returned unsorted, so the
// caller observes iteration order.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "determinism: map range appends to \"keys\" but the function never sorts it"
		keys = append(keys, k)
	}
	return keys
}

// Bad: a single projected key over a multi-field struct is a partial
// order; equal priorities permute under -parallel.
func sortByPrio(items []item) {
	sort.Slice(items, func(i, j int) bool { return items[i].Prio < items[j].Prio }) // want "determinism: sort.Slice orders structs by field .Prio alone"
}

// Bad: the stable variant has the same problem when the input
// permutation itself is schedule-dependent.
func sortByKeyMethod(items []*item) {
	sort.SliceStable(items, func(i, j int) bool { return items[i].key() < items[j].key() }) // want "determinism: sort.SliceStable orders structs by method key\\(\\) alone"
}

func (it *item) key() string { return it.Key }

// Good: collect, then sort — the canonical repair.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Good: a comparator with a tie-break chain is a total order.
func sortTotal(items []item) {
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].Prio != items[j].Prio {
			return items[i].Prio < items[j].Prio
		}
		return items[i].Key < items[j].Key
	})
}

// Good: appending into a fresh local that never outlives the loop's
// statement is invisible; sorting by the whole element of a basic slice
// is already total.
func sums(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
