// Package coll exercises the determinism analyzer over the collective
// extractor's central hazard: per-rank instance tables keyed by block
// number. Instances are assembled in a map while walking each rank's
// timeline, so flattening that map in iteration order permutes the
// instance list — and with it the fitted model's design matrix — between
// otherwise identical runs. Both sides are covered: the order-leaking
// shapes are flagged, the canonical collect-and-sort repairs are not.
package coll

import (
	"fmt"
	"sort"
	"time"
)

type instance struct {
	Block int
	Span  int64
}

// Bad: instances are flattened in map-iteration order and handed to the
// model fit unsorted, so the residual ordering depends on map layout.
func flattenUnsorted(byBlock map[int]instance) []instance {
	var out []instance
	for _, inst := range byBlock { // want "determinism: map range appends to \"out\" but the function never sorts it"
		out = append(out, inst)
	}
	return out
}

// Bad: rendering the per-op table mid-range leaks iteration order into
// the report stream; no later sort can repair emitted bytes.
func renderPerOp(spans map[string]int64) {
	for op, span := range spans { // want "determinism: map iteration order reaches fmt.Printf directly"
		fmt.Printf("%s %d\n", op, span)
	}
}

// Bad: ordering instances by span alone is not a total order — equal
// spans (identical barriers) permute under -parallel.
func sortBySpanOnly(insts []instance) {
	sort.Slice(insts, func(i, j int) bool { // want "determinism: sort.Slice orders structs by field .Span alone"
		return insts[i].Span < insts[j].Span
	})
}

// Bad: internal/coll is a simulation-scope package — timeline
// reconstruction works in simulated nanoseconds, never the host clock.
func stampAnalysis() int64 {
	return time.Now().UnixNano() // want "determinism: wall-clock time.Now in a simulation package"
}

// Good: collect block keys, sort, then flatten — the canonical repair.
func flattenSorted(byBlock map[int]instance) []instance {
	keys := make([]int, 0, len(byBlock))
	for k := range byBlock {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]instance, 0, len(keys))
	for _, k := range keys {
		out = append(out, byBlock[k])
	}
	return out
}

// Good: a span ordering with a unique tie-break restores totality.
func sortBySpanThenBlock(insts []instance) {
	sort.Slice(insts, func(i, j int) bool {
		if insts[i].Span != insts[j].Span {
			return insts[i].Span < insts[j].Span
		}
		return insts[i].Block < insts[j].Block
	})
}
