// Package sim exercises the determinism analyzer's simulation-package
// scope: host clocks and the process-global rand source are forbidden
// here outright, because model time must come from simulated cycles and
// randomness from the spec-seeded stream.
package sim

import (
	"math/rand"
	"time"
)

// Bad: reads the host clock.
func stamp() int64 {
	t := time.Now() // want "determinism: wall-clock time.Now in a simulation package"
	return t.UnixNano()
}

// Bad: measures host elapsed time.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "determinism: wall-clock time.Since in a simulation package"
}

// Bad: waits on the host clock.
func nap() {
	time.Sleep(time.Millisecond) // want "determinism: wall-clock time.Sleep in a simulation package"
}

// Bad: draws from the process-global source, whose sequence depends on
// every other goroutine that touched it.
func jitter() int {
	return rand.Intn(8) // want "determinism: process-global rand.Intn in a simulation package"
}

// Good: a locally seeded source replays identically (method calls on a
// *rand.Rand are fine), and Duration conversions never read the clock.
func seeded(seed int64) time.Duration {
	r := rand.New(rand.NewSource(seed))
	return time.Duration(r.Intn(8)) * time.Millisecond
}
