// Package mesh exercises the determinism analyzer over the topology
// layer's central hazard: adjacency built from maps. Link ids are
// assigned in creation order and flow into every delivery log, so a
// wiring pass that iterates a map unsorted makes the whole simulation
// schedule-dependent. Both sides are covered: the order-leaking shapes
// are flagged, the canonical repairs are not.
package mesh

import (
	"fmt"
	"sort"
	"time"
)

// Bad: link endpoints are collected in map-iteration order and returned
// without a sort, so link-id assignment depends on the map's layout.
func wireUnsorted(adjacency map[int][]int) []int {
	var links []int
	for node := range adjacency { // want "determinism: map range appends to \"links\" but the function never sorts it"
		links = append(links, node)
	}
	return links
}

// Bad: dumping the wiring mid-range leaks iteration order straight into
// the output stream; no later sort can repair it.
func dumpWiring(adjacency map[int]int) {
	for from, to := range adjacency { // want "determinism: map iteration order reaches fmt.Printf directly"
		fmt.Printf("%d->%d\n", from, to)
	}
}

// Bad: internal/mesh is a simulation package — fabric construction may
// not consult the host clock.
func timestampedBuild() int64 {
	return time.Now().UnixNano() // want "determinism: wall-clock time.Now in a simulation package"
}

// Good: collect, sort, then wire — the canonical adjacency repair.
func wireSorted(adjacency map[int][]int) []int {
	var nodes []int
	for node := range adjacency {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	return nodes
}

// Good: port-indexed wiring never touches a map; a Topology's
// Degree/Neighbor contract iterates ports in fixed ascending order.
func wireByPort(degree int, neighbor func(port int) int) []int {
	links := make([]int, 0, degree)
	for p := 0; p < degree; p++ {
		if n := neighbor(p); n >= 0 {
			links = append(links, n)
		}
	}
	return links
}
