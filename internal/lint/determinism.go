package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// simulationPackages are the packages whose observable behaviour must be
// a pure function of the RunSpec: they may consume only simulated cycles
// (sim.Now) and seeded RNG streams (sim/rand), never the host clock or
// the process-global rand source. One stray time.Now here silently
// breaks the regression-fit reproducibility of the SAS methodology.
var simulationPackages = []string{
	"internal/sim",
	"internal/core",
	"internal/stats",
	"internal/mesh",
	"internal/ccnuma",
	// The collective extractor reconstructs per-rank timelines from the
	// delivery log; its instance tables are keyed maps, so an unsorted
	// iteration there reorders the characterization between runs.
	"internal/coll",
}

// clockedPackages are the packages that may observe the host clock, but
// only through the obs.Clock seam: internal/obs owns the single
// sanctioned real-clock shim (obs.System, carrying the one permanent
// //lint:allow), internal/pipeline times its stages against an injected
// Clock so a fake clock makes every export reproducible, and
// internal/dist makes every lease/expiry/speculation decision against
// the coordinator's injected Clock so tests can drive straggler hedging
// deterministically. A bare time.Now here bypasses the injection point
// and is flagged; real tickers and timers that merely pace loops carry
// explicit //lint:allow justifications.
var clockedPackages = []string{
	"internal/obs",
	"internal/pipeline",
	"internal/dist",
}

// wallClockFuncs are the time package entry points that observe or wait
// on the host clock. Conversions and constants (time.Duration,
// time.Millisecond) remain fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// DeterminismAnalyzer enforces the PR 2 guarantee that a sweep's output
// is byte-identical at -parallel=1 and -parallel=N, cold or resumed:
//
//   - a `range` over a map whose body appends to an outer slice must be
//     followed by a sort of that slice in the same function; a map
//     range that writes or prints directly is always flagged (the
//     iteration order escapes before any sort could repair it);
//   - sort.Slice/sort.SliceStable/slices.SortFunc comparators that
//     order struct elements by a single projected key are flagged: a
//     partial order plus a nondeterministic input permutation is
//     exactly the tie-breaking bug class fixed by hand in PR 2;
//   - inside the simulation packages, wall-clock time.* and the
//     process-global math/rand source are forbidden outright.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "flags map-iteration order, tie-less sorts, wall clocks, and global RNG " +
		"that would make a characterization depend on schedule instead of spec",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, fn := range funcsIn(pass.Files) {
		checkMapRanges(pass, fn)
		checkSortCalls(pass, fn)
	}
	if inScope(pass.Pkg.Path(), simulationPackages...) {
		checkWallClockAndRand(pass)
	}
	if inScope(pass.Pkg.Path(), clockedPackages...) {
		checkWallClockBehindClock(pass)
	}
	return nil
}

// checkMapRanges flags order-sensitive map iteration in fn.
func checkMapRanges(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	var ranges []*ast.RangeStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := info.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rs)
				}
			}
		}
		return true
	})
	for _, rs := range ranges {
		appended, escaped := mapRangeEffects(info, rs)
		if escaped != "" {
			pass.Reportf(rs.For, "map iteration order reaches %s directly; "+
				"collect and sort keys first", escaped)
			continue
		}
		for _, obj := range appended {
			if !sortedLaterIn(info, fn.Body, rs.End(), obj) {
				pass.Reportf(rs.For, "map range appends to %q but the function never sorts it; "+
					"iteration order will leak into the output", obj.Name())
			}
		}
	}
}

// mapRangeEffects scans a map-range body for order-sensitive effects:
// appends to variables declared outside the loop (returned for a
// later-sort check) and writes/prints/hashes (returned as a description
// of the escape, which no later sort can repair).
func mapRangeEffects(info *types.Info, rs *ast.RangeStmt) (appended []types.Object, escaped string) {
	seen := make(map[types.Object]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" {
				if target := appendTarget(info, call); target != nil &&
					target.Pos().IsValid() && !within(target.Pos(), rs) && !seen[target] {
					seen[target] = true
					appended = append(appended, target)
				}
				return true
			}
		}
		if name := orderEscapingCallee(info, call); name != "" && escaped == "" {
			escaped = name
		}
		return true
	})
	return appended, escaped
}

// appendTarget resolves the variable (or struct field) receiving
// append's result in `x = append(x, ...)` / `s.f = append(s.f, ...)`;
// it returns nil for appends into fresh locals or other expressions.
func appendTarget(info *types.Info, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	switch arg := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		return info.Uses[arg]
	case *ast.SelectorExpr:
		return info.Uses[arg.Sel]
	}
	return nil
}

// orderEscapingCallee reports a human-readable name when call emits
// bytes whose order is observable: fmt printing, io writes, hashing.
func orderEscapingCallee(info *types.Info, call *ast.CallExpr) string {
	obj := callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return "fmt." + name
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune" || name == "Sum" {
			return "method " + name
		}
	}
	return ""
}

// within reports whether pos falls inside node's source extent.
func within(pos token.Pos, node ast.Node) bool {
	return node.Pos() <= pos && pos < node.End()
}

// sortedLaterIn reports whether, after position after, the function
// body contains a sort call mentioning obj.
func sortedLaterIn(info *types.Info, body *ast.BlockStmt, after token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}

// isSortCall reports whether call invokes the sort or slices package.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := callee(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "sort" || p == "slices"
}

// checkSortCalls flags single-key struct comparators in fn.
func checkSortCalls(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fnObj, ok := callee(info, call).(*types.Func)
		if !ok || fnObj.Pkg() == nil {
			return true
		}
		switch {
		case fnObj.Pkg().Path() == "sort" && (fnObj.Name() == "Slice" || fnObj.Name() == "SliceStable"),
			fnObj.Pkg().Path() == "slices" && (fnObj.Name() == "SortFunc" || fnObj.Name() == "SortStableFunc"):
		default:
			return true
		}
		lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
		if !ok {
			return true
		}
		if key := singleKeyComparator(info, lit); key != "" {
			pass.Reportf(call.Pos(), "%s.%s orders structs by %s alone, which is not a total order; "+
				"break ties on a unique field so equal keys cannot permute under -parallel",
				fnObj.Pkg().Name(), fnObj.Name(), key)
		}
		return true
	})
}

// singleKeyComparator returns a description of the sort key when lit's
// body is a single `return a < b` (or >) over one projected field or
// method of a multi-field struct element — a comparator with no
// tie-breaker. It returns "" for comparators over whole basic elements,
// multi-statement bodies, or || / && tie-break chains.
func singleKeyComparator(info *types.Info, lit *ast.FuncLit) string {
	if len(lit.Body.List) != 1 {
		return ""
	}
	ret, ok := lit.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return ""
	}
	bin, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.LSS && bin.Op != token.GTR) {
		return ""
	}
	if key := projectedKey(info, bin.X); key != "" && projectedKey(info, bin.Y) != "" {
		return key
	}
	return ""
}

// projectedKey describes expr when it projects a single key out of a
// struct with more than one field (a field selector or niladic method
// call on the element); "" otherwise.
func projectedKey(info *types.Info, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	if call, ok := expr.(*ast.CallExpr); ok && len(call.Args) == 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && multiFieldStruct(info.TypeOf(sel.X)) {
			return "method " + sel.Sel.Name + "()"
		}
		return ""
	}
	if sel, ok := expr.(*ast.SelectorExpr); ok && multiFieldStruct(info.TypeOf(sel.X)) {
		return "field ." + sel.Sel.Name
	}
	return ""
}

// multiFieldStruct reports whether t (or what it points to) is a struct
// with at least two fields, i.e. a type where one field cannot carry
// the whole identity.
func multiFieldStruct(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return ok && st.NumFields() > 1
}

// checkWallClockBehindClock forbids bare host-clock reads inside the
// clocked packages: all wall time there must flow through an injected
// obs.Clock. The single legitimate time.Now — obs.System's real-clock
// shim — carries a permanent //lint:allow, which also proves the allow
// machinery keeps working.
func checkWallClockBehindClock(pass *Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := callee(info, call).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // Clock.Now and friends are the sanctioned path
			}
			if fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
				pass.Reportf(call.Pos(), "wall-clock time.%s outside obs.Clock; "+
					"inject a Clock (obs.System in production, obs.Fake in tests) so traced exports stay reproducible", fn.Name())
			}
			return true
		})
	}
}

// checkWallClockAndRand forbids host-clock reads and the global
// math/rand source inside the simulation packages.
func checkWallClockAndRand(pass *Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := callee(info, call).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. a seeded *rand.Rand) are fine
			}
			switch pkg := fn.Pkg().Path(); {
			case pkg == "time" && wallClockFuncs[fn.Name()]:
				pass.Reportf(call.Pos(), "wall-clock time.%s in a simulation package; "+
					"model time must come from sim cycles so replays are schedule-independent", fn.Name())
			case (pkg == "math/rand" || pkg == "math/rand/v2") && !strings.HasPrefix(fn.Name(), "New"):
				pass.Reportf(call.Pos(), "process-global rand.%s in a simulation package; "+
					"draw from the spec-seeded stream so runs replay identically", fn.Name())
			}
			return true
		})
	}
}
