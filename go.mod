module commchar

go 1.22
